"""LLM-Pilot wrapped in the common recommender interface for evaluation.

Combines the §IV performance model (weighted + monotone GBM) with
optional inner leave-one-LLM-out hyperparameter tuning, exposing the
same ``fit`` / ``predict_latencies`` / ``recommend`` contract as the
§V-C baselines so the Fig 8 harness can compare them uniformly.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.baselines.base import BaseRecommender
from repro.characterization.dataset import PerfDataset
from repro.models.llm import LLMSpec
from repro.recommendation.features import FeatureSpace
from repro.recommendation.hpo import tune_performance_model
from repro.recommendation.perfmodel import PerfModelHyperparams, PerformanceModel
from repro.recommendation.weights import LatencyConstraints

__all__ = ["LLMPilotRecommender"]


class LLMPilotRecommender(BaseRecommender):
    """The paper's method: weighted, monotone GBM latency model."""

    name = "LLM-Pilot"
    requires_reference = False

    def __init__(
        self,
        constraints: LatencyConstraints,
        hyperparams: PerfModelHyperparams | None = None,
        tune: bool = False,
        tuning_grid: Mapping[str, Sequence[object]] | None = None,
        use_sample_weights: bool = True,
        use_monotone_constraint: bool = True,
        random_state: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.constraints = constraints
        self.hyperparams = hyperparams or PerfModelHyperparams()
        self.tune = tune
        self.tuning_grid = tuning_grid
        self.use_sample_weights = use_sample_weights
        self.use_monotone_constraint = use_monotone_constraint
        self.random_state = random_state
        self.model_: PerformanceModel | None = None
        self.tuned_hyperparams_: PerfModelHyperparams | None = None

    def fit(self, train: PerfDataset, llm_lookup: dict[str, LLMSpec]) -> None:
        hp = self.hyperparams
        if self.tune:
            hp, _ = tune_performance_model(
                train,
                llm_lookup,
                self.constraints,
                grid=self.tuning_grid,
                use_sample_weights=self.use_sample_weights,
                use_monotone_constraint=self.use_monotone_constraint,
                random_state=self.random_state,
            )
        self.tuned_hyperparams_ = hp
        feature_space = FeatureSpace.fit([llm_lookup[name] for name in train.llms()])
        self.model_ = PerformanceModel(
            feature_space=feature_space,
            constraints=self.constraints,
            hyperparams=hp,
            use_sample_weights=self.use_sample_weights,
            use_monotone_constraint=self.use_monotone_constraint,
            random_state=self.random_state,
        ).fit(train, llm_lookup)

    def predict_latencies(
        self, llm: LLMSpec, profile: str, user_counts: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.model_ is None:
            raise RuntimeError("fit must be called before predict_latencies")
        return self.model_.predict(llm, profile, list(user_counts))
