"""The latency performance model (paper §IV-B2).

Two gradient-boosted regressors — one for nTTFT, one for ITL — trained
on the characterization dataset with (a) the Eq. (4) constraint-proximity
sample weights and (b) a monotonicity constraint on the concurrent-users
feature (latencies never decrease as load grows). The combination is the
paper's key modeling contribution: the weights focus accuracy near the
constraints, and the monotonicity constraint prevents spurious
constraint-violation flags at low user counts from wrecking the umax
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.characterization.dataset import PerfDataset
from repro.ml.gbm import GradientBoostingRegressor
from repro.models.llm import LLMSpec
from repro.recommendation.features import FeatureSpace
from repro.recommendation.weights import LatencyConstraints, constraint_proximity_weights

__all__ = ["PerfModelHyperparams", "PerformanceModel", "DEFAULT_HP_GRID"]


@dataclass(frozen=True)
class PerfModelHyperparams:
    """The XGBoost-style hyperparameters the paper tunes (§IV-B3)."""

    n_estimators: int = 200
    max_depth: int = 4
    learning_rate: float = 0.1
    subsample: float = 1.0
    colsample: float = 1.0
    max_bins: int = 64


#: Small default grid for leave-one-LLM-out tuning; mirrors the paper's
#: tuned dimensions while staying tractable offline.
DEFAULT_HP_GRID: dict[str, list] = {
    "n_estimators": [100, 300],
    "max_depth": [3, 5],
    "learning_rate": [0.05, 0.15],
    "subsample": [0.8, 1.0],
}


@dataclass
class PerformanceModel:
    """Joint (nTTFT, ITL) latency predictor for inference services."""

    feature_space: FeatureSpace
    constraints: LatencyConstraints
    hyperparams: PerfModelHyperparams = field(default_factory=PerfModelHyperparams)
    use_sample_weights: bool = True
    use_monotone_constraint: bool = True
    random_state: int = 0
    _model_nttft: GradientBoostingRegressor | None = field(default=None, repr=False)
    _model_itl: GradientBoostingRegressor | None = field(default=None, repr=False)

    # ---- training ------------------------------------------------------------

    def _make_regressor(self) -> GradientBoostingRegressor:
        hp = self.hyperparams
        monotone = (
            {self.feature_space.users_feature_index: 1}
            if self.use_monotone_constraint
            else None
        )
        return GradientBoostingRegressor(
            n_estimators=hp.n_estimators,
            max_depth=hp.max_depth,
            learning_rate=hp.learning_rate,
            subsample=hp.subsample,
            colsample=hp.colsample,
            max_bins=hp.max_bins,
            monotone_constraints=monotone,
            random_state=self.random_state,
        )

    def fit(self, train: PerfDataset, llm_lookup: dict[str, LLMSpec]) -> "PerformanceModel":
        """Fit both latency regressors on the characterization data.

        ``llm_lookup`` maps dataset LLM names to their architecture cards
        (features are built from the cards, never from measurements of
        the target LLM).
        """
        rows = [
            (llm_lookup[r.llm], r.profile, r.concurrent_users) for r in train.records
        ]
        X = self.feature_space.transform(rows)
        y1 = train.column("nttft_median_s")
        y2 = train.column("itl_median_s")
        w = (
            constraint_proximity_weights(train, self.constraints)
            if self.use_sample_weights
            else np.ones(len(train))
        )
        ok = np.isfinite(y1) & np.isfinite(y2)
        if not np.any(ok):
            raise ValueError("no finite training rows")
        self._model_nttft = self._make_regressor().fit(
            X[ok], y1[ok], sample_weight=w[ok]
        )
        self._model_itl = self._make_regressor().fit(
            X[ok], y2[ok], sample_weight=w[ok]
        )
        return self

    # ---- inference ---------------------------------------------------------------

    def predict(
        self, llm: LLMSpec, profile: str, user_counts: list[int] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(nTTFT, ITL) predictions across ``user_counts`` for one profile."""
        if self._model_nttft is None or self._model_itl is None:
            raise RuntimeError("model must be fit before predict")
        rows = [(llm, profile, int(u)) for u in user_counts]
        X = self.feature_space.transform(rows)
        return self._model_nttft.predict(X), self._model_itl.predict(X)
