"""Elastic recommendation: cost-aware autoscaler-in-the-loop sizing.

The paper's recommendation (Eqs. 1-3) answers the sizing question with a
*fixed* pod count — under time-varying traffic that count must be sized
for the peak, and the trough is pure waste. The simulation substrate can
now resize fleets on a shared clock (autoscaling, cold starts, draining,
pod-second billing), so the recommendation layer can exploit it:

* a :class:`CostObjective` scores one simulated run as dollars: the
  pod-second bill (via :class:`~repro.hardware.pricing.PricingTable`)
  plus a configurable SLO-penalty function of the run's p95 TTFT
  (:class:`LinearSLOPenalty` scales with the relative breach,
  :class:`StepSLOPenalty` charges a flat rate while breached — or any
  ``Callable[[FleetResult], float]``);
* an :class:`ElasticRecommender` sweeps ``(policy, min_pods, max_pods)``
  candidates through :class:`~repro.simulation.fleet.FleetSimulator`
  under a caller-supplied traffic model — every candidate replays the
  identical seeded arrival process and workload stream, so the sweep is
  a controlled experiment — and scores each with the objective. The
  factory may return any open-loop model, including
  :class:`~repro.simulation.replay.ReplayTraffic` over a recorded
  arrival log: recommending against the traffic a platform *actually
  saw* (CLI: ``recommend-elastic --traffic replay --arrivals FILE``)
  rather than a synthetic stand-in;
* the :class:`ElasticRecommendation` carries the full
  pod-hours-vs-SLO-penalty trade curve (:class:`TradePoint` per
  candidate, including the static sizing ladder), the chosen config and
  its savings against the peak-sized static baseline.

``GPURecommendationTool.recommend(..., elastic=ElasticOptions(...))``
closes the loop with the paper's pipeline: Eqs. (1)-(3) pick the profile
and the peak-static pod count, then the sweep recommends
``min_pods``/``max_pods`` and a policy on that profile instead of the
fixed count.
"""

from __future__ import annotations

import logging
import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hardware.pricing import CLOUD_PRICING_MODES, CloudCatalog, PricingTable
from repro.utils.parallel import fork_map
from repro.simulation.cloud import BurstPolicy, CloudLedger, HybridCapacity
from repro.simulation.autoscale import (
    Autoscaler,
    AutoscaleConfig,
    AutoscalePolicy,
    PredictivePolicy,
    TargetUtilizationPolicy,
    ThresholdPolicy,
)
from repro.simulation.fleet import FleetResult, Router
from repro.simulation.replay import RecordedTraffic

if TYPE_CHECKING:
    from repro.cluster.deployment import Deployment
    from repro.simulation.traffic import TrafficModel
    from repro.workload.generator import WorkloadGenerator

__all__ = [
    "SLOPenaltyFn",
    "LinearSLOPenalty",
    "StepSLOPenalty",
    "CostObjective",
    "ElasticCandidate",
    "TradePoint",
    "PrunedCandidate",
    "ElasticRecommendation",
    "ElasticOptions",
    "ElasticRecommender",
    "default_candidates",
]

logger = logging.getLogger(__name__)

#: Maps one simulated run to an SLO-penalty charge in dollars.
SLOPenaltyFn = Callable[[FleetResult], float]


def _breached(result: FleetResult, slo_p95_ttft_s: float) -> bool:
    """Did the run's p95 TTFT breach the SLO?

    A NaN tail with admitted work means nothing was served at all —
    the worst possible breach, not a free pass; a NaN tail on an idle
    run (nothing admitted) is vacuously within SLO.
    """
    p95 = result.ttft.p95_s
    if math.isnan(p95):
        return result.admitted > 0 and result.completed_total == 0
    return p95 > slo_p95_ttft_s


@dataclass(frozen=True)
class LinearSLOPenalty:
    """Dollars per hour, scaled by the relative p95 TTFT excess.

    ``penalty = rate * hours * max(0, p95/slo - 1)`` — a 2x breach of
    the SLO for the whole window costs ``penalty_per_hour * hours``.
    ``penalty_per_shed`` additionally charges every request the
    admission controller rejected, so shedding cannot masquerade as a
    latency win for free.
    """

    slo_p95_ttft_s: float
    penalty_per_hour: float = 50.0
    penalty_per_shed: float = 0.0

    def __post_init__(self) -> None:
        if self.slo_p95_ttft_s <= 0:
            raise ValueError(
                f"slo_p95_ttft_s must be positive, got {self.slo_p95_ttft_s}"
            )
        if self.penalty_per_hour < 0 or self.penalty_per_shed < 0:
            raise ValueError("penalty rates must be >= 0")

    def __call__(self, result: FleetResult) -> float:
        hours = result.duration_s / 3600.0
        shed_cost = self.penalty_per_shed * result.shed
        p95 = result.ttft.p95_s
        if math.isnan(p95):
            if _breached(result, self.slo_p95_ttft_s):
                # Nothing served at all: charge as a total (1x) breach.
                return self.penalty_per_hour * hours + shed_cost
            return shed_cost
        excess = max(0.0, p95 / self.slo_p95_ttft_s - 1.0)
        return self.penalty_per_hour * hours * excess + shed_cost


@dataclass(frozen=True)
class StepSLOPenalty:
    """Flat dollars per hour while the p95 TTFT sits above the SLO."""

    slo_p95_ttft_s: float
    penalty_per_hour: float = 50.0
    penalty_per_shed: float = 0.0

    def __post_init__(self) -> None:
        if self.slo_p95_ttft_s <= 0:
            raise ValueError(
                f"slo_p95_ttft_s must be positive, got {self.slo_p95_ttft_s}"
            )
        if self.penalty_per_hour < 0 or self.penalty_per_shed < 0:
            raise ValueError("penalty rates must be >= 0")

    def __call__(self, result: FleetResult) -> float:
        hours = result.duration_s / 3600.0
        penalty = (
            self.penalty_per_hour * hours
            if _breached(result, self.slo_p95_ttft_s)
            else 0.0
        )
        return penalty + self.penalty_per_shed * result.shed


@dataclass(frozen=True)
class CostObjective:
    """Scores one simulated run in dollars: compute bill + SLO penalty.

    The compute bill is the run's provisioned pod-seconds priced at the
    profile's hourly c(G) — exactly what an elastic deployment pays,
    as opposed to Eq. (1)'s ``n * c(G)`` flat rate for a static one.

    With ``cloud`` set the bill is *mixed*: the run's on-prem
    pod-seconds stay at the pricing table's rate, while its cloud
    pod-seconds (a hybrid fleet's burst tier) are priced from the
    catalog under ``cloud_mode``. A run that rented cloud capacity
    cannot be scored without a catalog — that is a hard error, not a
    silently on-prem-priced bill.
    """

    pricing: PricingTable
    penalty: SLOPenaltyFn
    cloud: CloudCatalog | None = None
    cloud_mode: str = "on-demand"

    def __post_init__(self) -> None:
        if self.cloud_mode not in CLOUD_PRICING_MODES:
            raise ValueError(
                f"unknown cloud pricing mode {self.cloud_mode!r}; "
                f"expected one of {', '.join(CLOUD_PRICING_MODES)}"
            )

    def compute_cost(self, result: FleetResult, profile) -> float:
        """Pod-second bill of the run on ``profile``, in dollars.

        Splits into on-prem and cloud tiers when the run burst to the
        cloud; a purely on-prem run bills exactly as before.
        """
        cloud_s = getattr(result, "cloud_pod_seconds", 0.0)
        if cloud_s <= 0:
            return result.pod_hours * self.pricing.pod_cost(profile)
        if self.cloud is None:
            raise ValueError(
                f"run billed {cloud_s:.0f} cloud pod-seconds but this "
                "objective has no cloud catalog to price them; construct "
                "CostObjective(cloud=...) with the catalog the fleet "
                "burst into"
            )
        on_prem_hours = result.on_prem_pod_seconds / 3600.0
        cloud_hours = cloud_s / 3600.0
        return on_prem_hours * self.pricing.pod_cost(
            profile
        ) + cloud_hours * self.cloud.pod_cost(profile, self.cloud_mode)

    def slo_penalty(self, result: FleetResult) -> float:
        """The penalty function's charge for the run, in dollars."""
        return float(self.penalty(result))

    def total(self, result: FleetResult, profile) -> float:
        """Full score of the run: compute bill plus SLO penalty."""
        return self.compute_cost(result, profile) + self.slo_penalty(result)


@dataclass(frozen=True)
class ElasticCandidate:
    """One configuration of the sweep: a policy between pod bounds.

    ``make_policy`` mints a fresh policy per run (policies may hold
    state); ``None`` means a static fleet of ``min_pods == max_pods``
    pods with no autoscaler at all — the baseline rungs of the curve.
    """

    policy: str
    min_pods: int
    max_pods: int
    make_policy: Callable[[], AutoscalePolicy] | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.min_pods < 1:
            raise ValueError(f"min_pods must be >= 1, got {self.min_pods}")
        if self.max_pods < self.min_pods:
            raise ValueError(
                f"max_pods {self.max_pods} must be >= min_pods {self.min_pods}"
            )
        if self.make_policy is None and self.min_pods != self.max_pods:
            raise ValueError("a static candidate needs min_pods == max_pods")

    @property
    def label(self) -> str:
        """Human-readable tag, e.g. ``threshold[1..6]`` or ``static[4]``."""
        if self.make_policy is None:
            return f"static[{self.min_pods}]"
        return f"{self.policy}[{self.min_pods}..{self.max_pods}]"


@dataclass
class TradePoint:
    """One point of the pod-hours-vs-SLO trade curve."""

    policy: str
    min_pods: int
    max_pods: int
    pod_hours: float
    compute_cost: float
    slo_penalty: float
    total_cost: float
    p95_ttft_s: float
    meets_slo: bool
    arrivals: int
    shed: int
    requests_completed: int
    scale_events: int
    denied_or_clipped: int
    result: FleetResult | None = field(default=None, repr=False)

    @property
    def label(self) -> str:
        """Human-readable tag matching the candidate that produced it."""
        if self.policy == "static":
            return f"static[{self.min_pods}]"
        return f"{self.policy}[{self.min_pods}..{self.max_pods}]"

    def as_dict(self) -> dict:
        """JSON-ready view (no simulation payload).

        A NaN tail (nothing served in the window) maps to ``None`` —
        bare ``NaN`` is not valid JSON and breaks strict parsers.
        """
        return {
            "policy": self.policy,
            "min_pods": self.min_pods,
            "max_pods": self.max_pods,
            "pod_hours": self.pod_hours,
            "compute_cost": self.compute_cost,
            "slo_penalty": self.slo_penalty,
            "total_cost": self.total_cost,
            "p95_ttft_s": None if math.isnan(self.p95_ttft_s) else self.p95_ttft_s,
            "meets_slo": self.meets_slo,
            "arrivals": self.arrivals,
            "shed": self.shed,
            "requests_completed": self.requests_completed,
            "scale_events": self.scale_events,
            "denied_or_clipped": self.denied_or_clipped,
        }


@dataclass(frozen=True)
class PrunedCandidate:
    """A sweep candidate skipped by the cost-lower-bound prune — never silently.

    Records the arithmetic that justified the skip: the candidate's
    unavoidable compute-bill floor (its ``min_pods`` provisioned for the
    whole scored window) already exceeded the total cost of an
    SLO-meeting incumbent, so simulating it could not have changed the
    recommendation.
    """

    label: str
    policy: str
    min_pods: int
    max_pods: int
    cost_floor: float
    incumbent_cost: float
    incumbent_label: str

    def as_dict(self) -> dict:
        """JSON-ready view of the prune decision."""
        return {
            "label": self.label,
            "policy": self.policy,
            "min_pods": self.min_pods,
            "max_pods": self.max_pods,
            "cost_floor": self.cost_floor,
            "incumbent_cost": self.incumbent_cost,
            "incumbent_label": self.incumbent_label,
        }


@dataclass
class ElasticRecommendation:
    """The sweep's answer: a config, its curve, and savings vs static.

    ``static`` is the peak-sized static baseline (Eq. 2's pod count when
    the sweep was invoked through ``GPURecommendationTool``, otherwise
    the smallest simulated static fleet that met the SLO); ``curve``
    holds every evaluated candidate including the static sizing ladder.
    """

    profile: str
    slo_p95_ttft_s: float
    chosen: TradePoint
    static: TradePoint
    curve: list[TradePoint] = field(default_factory=list)
    static_recommendation: object | None = field(default=None, repr=False)
    pruned: list[PrunedCandidate] = field(default_factory=list)

    @property
    def savings(self) -> float:
        """Dollars saved vs the static baseline over the simulated window."""
        return self.static.total_cost - self.chosen.total_cost

    @property
    def savings_fraction(self) -> float:
        """Savings as a fraction of the static baseline's cost."""
        if self.static.total_cost <= 0:
            return 0.0
        return self.savings / self.static.total_cost

    @property
    def meets_slo(self) -> bool:
        """Did the chosen configuration keep the p95 TTFT inside the SLO?"""
        return self.chosen.meets_slo

    def as_dict(self) -> dict:
        """JSON-ready view of the recommendation and its trade curve."""
        return {
            "profile": self.profile,
            "slo_p95_ttft_s": self.slo_p95_ttft_s,
            "chosen": self.chosen.as_dict(),
            "static": self.static.as_dict(),
            "curve": [p.as_dict() for p in self.curve],
            "pruned": [p.as_dict() for p in self.pruned],
            "savings": self.savings,
            "savings_fraction": self.savings_fraction,
            "meets_slo": self.meets_slo,
        }


def default_candidates(
    slo_p95_ttft_s: float,
    max_pods: int,
    requests_per_pod_per_s: float,
    min_pods: int = 1,
    target_utilization: float = 0.5,
    policy_slo_fraction: float = 0.25,
) -> list[ElasticCandidate]:
    """The standard sweep: all three adaptive policies between the bounds.

    The threshold policy reacts at ``policy_slo_fraction`` of the
    end-to-end SLO: the run's p95 includes every scale-up transient, so
    a policy that only moves once the *windowed* tail breaches the full
    SLO has already lost it for the run. Reacting early keeps the
    end-to-end tail inside the target.
    """
    if not 0.0 < policy_slo_fraction <= 1.0:
        raise ValueError(
            f"policy_slo_fraction must be in (0, 1], got {policy_slo_fraction}"
        )
    return [
        ElasticCandidate(
            "threshold",
            min_pods,
            max_pods,
            lambda: ThresholdPolicy(
                slo_p95_ttft_s=policy_slo_fraction * slo_p95_ttft_s
            ),
        ),
        ElasticCandidate(
            "target-utilization",
            min_pods,
            max_pods,
            lambda: TargetUtilizationPolicy(target=target_utilization),
        ),
        ElasticCandidate(
            "predictive",
            min_pods,
            max_pods,
            lambda: PredictivePolicy(requests_per_pod_per_s=requests_per_pod_per_s),
        ),
    ]


@dataclass
class ElasticOptions:
    """What ``GPURecommendationTool.recommend(elastic=...)`` needs to sweep.

    The static pipeline (Eqs. 1-3) knows nothing about traffic over
    time; these options supply the missing dynamic context: the workload
    generator and seeded traffic factory to simulate under, the cost
    objective, and the sweep's knobs. ``max_batch_weight`` is tuned for
    the recommended profile when left ``None`` (the per-profile tuning
    the characterization tool performs).
    """

    generator: "WorkloadGenerator"
    traffic_factory: Callable[[], "TrafficModel"]
    objective: CostObjective
    slo_p95_ttft_s: float
    duration_s: float
    warmup_s: float = 0.0
    candidates: Sequence[ElasticCandidate] | None = None
    headroom: int = 2
    max_batch_weight: int | None = None
    seed: int = 0
    decision_interval_s: float = 15.0
    cold_start_s: float = 10.0
    metrics_window_s: float = 30.0
    router_factory: Callable[[], Router] | None = None


class ElasticRecommender:
    """Sweeps autoscaling configs through the fleet simulator and scores them.

    ``traffic_factory`` must return a *fresh, identically seeded* traffic
    model on every call — each candidate replays the same arrival
    process, and the deployment's workload stream label is held fixed,
    so two candidates differ only in how the fleet resizes itself.

    With ``cache_arrivals`` (the default) that shared arrival process is
    generated exactly once per sweep — the factory is called once, its
    stream materialized as a :class:`RecordedTraffic`, and every
    candidate replays the shared arrays bit-identically — instead of
    regenerating identical timestamps and token draws per candidate.

    With ``on_prem_pods`` set the sweep is *hybrid*: each candidate's
    fleet is bound to a :class:`~repro.simulation.cloud.HybridCapacity`
    — the first ``on_prem_pods`` provisioned pods are owned, overflow
    rents from the objective's cloud catalog under ``burst`` (default:
    an unbounded :class:`~repro.simulation.cloud.BurstPolicy` in the
    objective's ``cloud_mode``) — and scored against the mixed bill.
    """

    def __init__(
        self,
        deployment: "Deployment",
        traffic_factory: Callable[[], "TrafficModel"],
        objective: CostObjective,
        slo_p95_ttft_s: float,
        duration_s: float,
        warmup_s: float = 0.0,
        decision_interval_s: float = 15.0,
        cold_start_s: float = 10.0,
        metrics_window_s: float = 30.0,
        router_factory: Callable[[], Router] | None = None,
        stream_label: object = "elastic",
        cache_arrivals: bool = True,
        on_prem_pods: int | None = None,
        burst: BurstPolicy | None = None,
    ) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if slo_p95_ttft_s <= 0:
            raise ValueError(f"slo_p95_ttft_s must be positive, got {slo_p95_ttft_s}")
        if on_prem_pods is not None:
            if on_prem_pods < 1:
                raise ValueError(
                    f"on_prem_pods must be >= 1, got {on_prem_pods}"
                )
            if objective.cloud is None:
                raise ValueError(
                    "a hybrid sweep (on_prem_pods set) needs a cloud "
                    "catalog to rent overflow from; construct the "
                    "objective with CostObjective(cloud=...)"
                )
        elif burst is not None:
            raise ValueError(
                "a burst policy without on_prem_pods has nothing to "
                "overflow from; set on_prem_pods to the owned-tier size"
            )
        # The sweep's premise is that every candidate faces the *same*
        # offered load. Purely completion-driven (closed-loop) traffic
        # has no scheduled arrivals — arrivals adapt to each candidate's
        # service rate, so a slow candidate would throttle its own load
        # and "save" money by serving less work. Reject it up front.
        if traffic_factory().peek() is None:
            raise ValueError(
                "ElasticRecommender needs an open-loop (scheduled-arrival) "
                "traffic model: closed-loop arrivals adapt to each "
                "candidate's service rate, so candidates would not face "
                "identical traffic and cost savings would be meaningless"
            )
        self.deployment = deployment
        self.traffic_factory = traffic_factory
        self.objective = objective
        self.slo_p95_ttft_s = float(slo_p95_ttft_s)
        self.duration_s = float(duration_s)
        self.warmup_s = float(warmup_s)
        self.decision_interval_s = float(decision_interval_s)
        self.cold_start_s = float(cold_start_s)
        self.metrics_window_s = float(metrics_window_s)
        self.router_factory = router_factory
        self.stream_label = stream_label
        self.cache_arrivals = bool(cache_arrivals)
        self.on_prem_pods = None if on_prem_pods is None else int(on_prem_pods)
        if on_prem_pods is not None and burst is None:
            burst = BurstPolicy(mode=objective.cloud_mode)
        self.burst = burst
        self._recorded: RecordedTraffic | None = None

    # ---- the shared arrival stream ----------------------------------------

    def _traffic(self) -> "TrafficModel":
        """The traffic model one candidate evaluation runs under.

        With ``cache_arrivals`` (the default) the factory's seeded
        open-loop stream is materialized exactly once — timestamps and
        workload-stream token draws — and every candidate replays the
        shared arrays through a fresh :class:`RecordedTraffic` cursor,
        which is provably bit-identical to a factory-fresh model (see
        :meth:`RecordedTraffic.record`). ``cache_arrivals=False`` falls
        back to regenerating per candidate.
        """
        if not self.cache_arrivals:
            return self.traffic_factory()
        if self._recorded is None:
            self._recorded = RecordedTraffic.record(
                self.traffic_factory(),
                self.deployment.workload_source(self.stream_label),
                self.warmup_s + self.duration_s,
            )
        return self._recorded.replay()

    # ---- one candidate ----------------------------------------------------

    def evaluate(self, candidate: ElasticCandidate) -> TradePoint:
        """Simulate one candidate and score it with the objective."""
        autoscaler = None
        if candidate.make_policy is not None:
            autoscaler = Autoscaler(
                candidate.make_policy(),
                AutoscaleConfig(
                    decision_interval_s=self.decision_interval_s,
                    min_pods=candidate.min_pods,
                    max_pods=candidate.max_pods,
                    cold_start_s=self.cold_start_s,
                    metrics_window_s=self.metrics_window_s,
                ),
            )
        deployment = self.deployment.scale(candidate.min_pods)
        router = self.router_factory() if self.router_factory else None
        if self.on_prem_pods is None:
            result = deployment.simulate(
                self._traffic(),
                duration_s=self.duration_s,
                router=router,
                warmup_s=self.warmup_s,
                stream_label=self.stream_label,
                keep_samples=False,
                autoscaler=autoscaler,
            )
        else:
            # Hybrid sweep: the first ``on_prem_pods`` provisioned pods
            # are owned, anything beyond rents from the objective's
            # catalog. A fresh ledger per evaluation keeps candidates
            # independent (and fork_map-safe): rented capacity never
            # leaks between candidates.
            fleet = deployment.fleet(
                self._traffic(),
                router=router,
                stream_label=self.stream_label,
                autoscaler=autoscaler,
            )
            assert self.objective.cloud is not None
            assert self.burst is not None
            hybrid = HybridCapacity(
                self.on_prem_pods,
                CloudLedger(self.objective.cloud, seed=self.deployment.seed),
                self.burst,
                self.deployment.profile.name,
            )
            hybrid.bind(fleet)
            result = fleet.run(
                duration_s=self.duration_s,
                warmup_s=self.warmup_s,
                keep_samples=False,
            )
        result.verify_conservation()
        profile = self.deployment.profile
        compute = self.objective.compute_cost(result, profile)
        penalty = self.objective.slo_penalty(result)
        return TradePoint(
            policy="static" if candidate.make_policy is None else candidate.policy,
            min_pods=candidate.min_pods,
            max_pods=candidate.max_pods,
            pod_hours=result.pod_hours,
            compute_cost=compute,
            slo_penalty=penalty,
            total_cost=compute + penalty,
            p95_ttft_s=result.ttft.p95_s,
            meets_slo=not _breached(result, self.slo_p95_ttft_s),
            arrivals=result.arrivals,
            shed=result.shed,
            requests_completed=result.requests_completed,
            scale_events=len(result.scale_events),
            denied_or_clipped=sum(1 for e in result.scale_events if e.constraint),
            result=result,
        )

    # ---- the sweep --------------------------------------------------------

    def evaluate_many(
        self, candidates: Sequence[ElasticCandidate], jobs: int = 1
    ) -> list[TradePoint]:
        """Evaluate candidates, in candidate order, optionally in parallel.

        Every candidate already replays an identically seeded arrival
        process with no shared mutable state, so evaluation order cannot
        influence any result — :func:`~repro.utils.parallel.fork_map`
        with ``jobs > 1`` fans the same calls across worker processes
        and returns the byte-identical list the serial loop produces.

        Identical candidates (same policy closure and pod bounds — e.g.
        a static rung appearing both in the ladder and in a caller's
        list) are simulated once; duplicate positions share the single
        :class:`TradePoint` object. With the arrival cache on, the
        stream is materialized *before* the fork so workers inherit the
        recorded arrays instead of regenerating them per process.
        """
        candidates = list(candidates)
        if self.cache_arrivals and self._recorded is None and candidates:
            self._traffic()

        def key(candidate: ElasticCandidate):
            # Candidate equality ignores ``make_policy`` (closures do not
            # compare), so two same-shaped candidates with *different*
            # policy factories must not merge: include the closure's
            # identity in the key.
            return (
                candidate.policy,
                candidate.min_pods,
                candidate.max_pods,
                None if candidate.make_policy is None else id(candidate.make_policy),
            )

        slots: dict[object, int] = {}
        unique: list[ElasticCandidate] = []
        for candidate in candidates:
            if key(candidate) not in slots:
                slots[key(candidate)] = len(unique)
                unique.append(candidate)
        points = fork_map(self.evaluate, unique, jobs)
        return [points[slots[key(candidate)]] for candidate in candidates]

    def peak_static_pods(
        self, search_max: int = 8, jobs: int = 1
    ) -> tuple[int, list[TradePoint]]:
        """Autoscaler-in-the-loop sizing of the *static* baseline.

        Finds the smallest static pod count in 1..``search_max`` that
        meets the SLO under the sweep's traffic — the "peak-sized" fleet
        the paper's fixed answer corresponds to — by **bisection**:
        adding pods to a static fleet under fixed open-loop traffic
        never worsens its tail, so SLO attainment is monotone in the pod
        count and O(log search_max) simulated rungs pin the boundary
        (the old linear ladder climb simulated every rung up to the
        answer). The rungs actually simulated are returned, sorted by
        pod count, as trade-curve points; the answer's rung is always
        among them. When even ``search_max`` pods breach, it is returned
        anyway (honest infeasibility: its penalty dominates its score).

        ``jobs`` is accepted for interface compatibility but unused —
        bisection is inherently sequential, and it already simulates
        fewer rungs than a parallel full ladder would.
        """
        if search_max < 1:
            raise ValueError(f"search_max must be >= 1, got {search_max}")
        del jobs
        points: dict[int, TradePoint] = {}

        def meets(n_pods: int) -> bool:
            if n_pods not in points:
                points[n_pods] = self.evaluate(
                    ElasticCandidate("static", n_pods, n_pods)
                )
            return points[n_pods].meets_slo

        if meets(1) or search_max == 1:
            best = 1
        elif not meets(search_max):
            best = search_max
        else:
            # Invariant: lo breaches, hi meets; the boundary is in (lo, hi].
            lo, hi = 1, search_max
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if meets(mid):
                    hi = mid
                else:
                    lo = mid
            best = hi
        return best, [points[n_pods] for n_pods in sorted(points)]

    def recommend(
        self,
        candidates: Sequence[ElasticCandidate] | None = None,
        static_pods: int | None = None,
        search_max: int = 8,
        headroom: int = 2,
        jobs: int = 1,
        prune: bool = False,
    ) -> ElasticRecommendation:
        """Run the sweep and pick the cheapest SLO-meeting configuration.

        ``static_pods`` pins the peak-sized baseline (e.g. Eq. 2's pod
        count); left ``None``, the static sizing ladder finds it by
        simulation. Default candidates sweep the three adaptive policies
        between 1 and ``static_pods + headroom`` pods, with the
        predictive policy's per-pod service rate estimated from the
        baseline run itself. Selection prefers SLO-meeting points, then
        the lowest total cost, then the fewest pod-hours; ``static``
        points compete on equal terms, so the recommendation degrades
        gracefully to "stay static" when elasticity does not pay.

        ``jobs > 1`` distributes the candidate sweep across worker
        processes; every candidate keeps its own deterministic seed, so
        the recommendation is byte-identical to the ``jobs=1`` serial
        sweep.

        ``prune=True`` skips candidates whose compute-bill *floor* —
        ``min_pods`` provisioned for the scored window, the cheapest run
        the candidate could possibly produce — already strictly exceeds
        the total cost of an SLO-meeting rung of the ladder. Such a
        candidate can never win the selection (assuming the objective's
        penalty is non-negative, as the built-in penalties guarantee),
        so its simulation is skipped; every skip is logged and recorded
        in the recommendation's ``pruned`` list, never silent.
        """
        ladder: list[TradePoint] = []
        if self.on_prem_pods is not None:
            # The static baseline of a hybrid sweep is the owned tier
            # alone: a static fleet cannot burst (it never scales), so
            # rungs beyond on_prem_pods are unbuildable. An owned tier
            # too small to meet the SLO statically is reported honestly
            # (penalty dominates) — exactly the case where bursting wins.
            search_max = min(search_max, self.on_prem_pods)
        if static_pods is None:
            static_pods, ladder = self.peak_static_pods(search_max, jobs=jobs)
            static_point = next(
                p for p in ladder if p.min_pods == static_pods
            )
        else:
            if static_pods < 1:
                raise ValueError(f"static_pods must be >= 1, got {static_pods}")
            static_point = self.evaluate(
                ElasticCandidate("static", static_pods, static_pods)
            )
            ladder = [static_point]
        if candidates is None:
            candidates = default_candidates(
                self.slo_p95_ttft_s,
                max_pods=static_pods + headroom,
                requests_per_pod_per_s=self._per_pod_rate(static_point, static_pods),
            )
        candidates = list(candidates)
        pruned: list[PrunedCandidate] = []
        if prune:
            candidates, pruned = self._prune(candidates, ladder)
        curve = ladder + self.evaluate_many(candidates, jobs)
        chosen = min(
            curve,
            key=lambda p: (not p.meets_slo, p.total_cost, p.pod_hours),
        )
        return ElasticRecommendation(
            profile=self.deployment.profile.name,
            slo_p95_ttft_s=self.slo_p95_ttft_s,
            chosen=chosen,
            static=static_point,
            curve=curve,
            pruned=pruned,
        )

    def _prune(
        self, candidates: list[ElasticCandidate], ladder: list[TradePoint]
    ) -> tuple[list[ElasticCandidate], list[PrunedCandidate]]:
        """Split candidates into (worth simulating, provably dominated).

        The bound: a candidate keeps at least ``min_pods`` provisioned
        for the whole billed window (the autoscaler cannot go below its
        floor), so its total cost is at least that compute bill. If that
        floor alone is strictly above an SLO-meeting incumbent's *total*
        cost, the candidate loses every leg of the selection key —
        ``meets_slo`` at best ties, ``total_cost`` is strictly worse —
        and simulating it cannot change the answer. Without an
        SLO-meeting incumbent nothing is pruned: an infeasible baseline
        proves nothing about the candidates.
        """
        incumbent = min(
            (p for p in ladder if p.meets_slo),
            key=lambda p: p.total_cost,
            default=None,
        )
        if incumbent is None:
            return candidates, []
        # Floors use ``duration_s`` only: whatever the billing window
        # includes beyond it (warmup, drain tails), the bill can only
        # grow, so the duration-only floor stays a valid lower bound.
        hours = self.duration_s / 3600.0
        pod_cost = self.objective.pricing.pod_cost(self.deployment.profile)
        if (
            self.on_prem_pods is not None
            and self.objective.cloud is not None
            and self.objective.cloud.offers(self.deployment.profile.gpu.name)
        ):
            # A hybrid candidate's floor pods may seat in whichever tier
            # is cheaper, so only the minimum of the two prices keeps
            # the floor a valid lower bound.
            pod_cost = min(
                pod_cost,
                self.objective.cloud.pod_cost(
                    self.deployment.profile, self.objective.cloud_mode
                ),
            )
        kept: list[ElasticCandidate] = []
        pruned: list[PrunedCandidate] = []
        for candidate in candidates:
            floor = candidate.min_pods * hours * pod_cost
            if floor > incumbent.total_cost:
                decision = PrunedCandidate(
                    label=candidate.label,
                    policy=candidate.policy,
                    min_pods=candidate.min_pods,
                    max_pods=candidate.max_pods,
                    cost_floor=floor,
                    incumbent_cost=incumbent.total_cost,
                    incumbent_label=incumbent.label,
                )
                pruned.append(decision)
                logger.info(
                    "pruned candidate %s: compute-bill floor $%.4f exceeds "
                    "incumbent %s total cost $%.4f",
                    decision.label,
                    decision.cost_floor,
                    decision.incumbent_label,
                    decision.incumbent_cost,
                )
            else:
                kept.append(candidate)
        return kept, pruned

    def _per_pod_rate(self, static_point: TradePoint, static_pods: int) -> float:
        """Sustainable per-pod arrival rate, from the baseline run.

        The peak-sized static fleet serves the whole offered load by
        construction, so its mean per-pod completion rate is a usable
        service-capacity estimate for the predictive policy.
        """
        rate = static_point.requests_completed / self.duration_s / static_pods
        return max(rate, 1e-6)
