"""Elastic recommendation: cost-aware autoscaler-in-the-loop sizing.

The paper's recommendation (Eqs. 1-3) answers the sizing question with a
*fixed* pod count — under time-varying traffic that count must be sized
for the peak, and the trough is pure waste. The simulation substrate can
now resize fleets on a shared clock (autoscaling, cold starts, draining,
pod-second billing), so the recommendation layer can exploit it:

* a :class:`CostObjective` scores one simulated run as dollars: the
  pod-second bill (via :class:`~repro.hardware.pricing.PricingTable`)
  plus a configurable SLO-penalty function of the run's p95 TTFT
  (:class:`LinearSLOPenalty` scales with the relative breach,
  :class:`StepSLOPenalty` charges a flat rate while breached — or any
  ``Callable[[FleetResult], float]``);
* an :class:`ElasticRecommender` sweeps ``(policy, min_pods, max_pods)``
  candidates through :class:`~repro.simulation.fleet.FleetSimulator`
  under a caller-supplied traffic model — every candidate replays the
  identical seeded arrival process and workload stream, so the sweep is
  a controlled experiment — and scores each with the objective. The
  factory may return any open-loop model, including
  :class:`~repro.simulation.replay.ReplayTraffic` over a recorded
  arrival log: recommending against the traffic a platform *actually
  saw* (CLI: ``recommend-elastic --traffic replay --arrivals FILE``)
  rather than a synthetic stand-in;
* the :class:`ElasticRecommendation` carries the full
  pod-hours-vs-SLO-penalty trade curve (:class:`TradePoint` per
  candidate, including the static sizing ladder), the chosen config and
  its savings against the peak-sized static baseline.

``GPURecommendationTool.recommend(..., elastic=ElasticOptions(...))``
closes the loop with the paper's pipeline: Eqs. (1)-(3) pick the profile
and the peak-static pod count, then the sweep recommends
``min_pods``/``max_pods`` and a policy on that profile instead of the
fixed count.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hardware.pricing import PricingTable
from repro.utils.parallel import fork_map
from repro.simulation.autoscale import (
    Autoscaler,
    AutoscaleConfig,
    AutoscalePolicy,
    PredictivePolicy,
    TargetUtilizationPolicy,
    ThresholdPolicy,
)
from repro.simulation.fleet import FleetResult, Router

if TYPE_CHECKING:
    from repro.cluster.deployment import Deployment
    from repro.simulation.traffic import TrafficModel
    from repro.workload.generator import WorkloadGenerator

__all__ = [
    "SLOPenaltyFn",
    "LinearSLOPenalty",
    "StepSLOPenalty",
    "CostObjective",
    "ElasticCandidate",
    "TradePoint",
    "ElasticRecommendation",
    "ElasticOptions",
    "ElasticRecommender",
    "default_candidates",
]

#: Maps one simulated run to an SLO-penalty charge in dollars.
SLOPenaltyFn = Callable[[FleetResult], float]


def _breached(result: FleetResult, slo_p95_ttft_s: float) -> bool:
    """Did the run's p95 TTFT breach the SLO?

    A NaN tail with admitted work means nothing was served at all —
    the worst possible breach, not a free pass; a NaN tail on an idle
    run (nothing admitted) is vacuously within SLO.
    """
    p95 = result.ttft.p95_s
    if math.isnan(p95):
        return result.admitted > 0 and result.completed_total == 0
    return p95 > slo_p95_ttft_s


@dataclass(frozen=True)
class LinearSLOPenalty:
    """Dollars per hour, scaled by the relative p95 TTFT excess.

    ``penalty = rate * hours * max(0, p95/slo - 1)`` — a 2x breach of
    the SLO for the whole window costs ``penalty_per_hour * hours``.
    ``penalty_per_shed`` additionally charges every request the
    admission controller rejected, so shedding cannot masquerade as a
    latency win for free.
    """

    slo_p95_ttft_s: float
    penalty_per_hour: float = 50.0
    penalty_per_shed: float = 0.0

    def __post_init__(self) -> None:
        if self.slo_p95_ttft_s <= 0:
            raise ValueError(
                f"slo_p95_ttft_s must be positive, got {self.slo_p95_ttft_s}"
            )
        if self.penalty_per_hour < 0 or self.penalty_per_shed < 0:
            raise ValueError("penalty rates must be >= 0")

    def __call__(self, result: FleetResult) -> float:
        hours = result.duration_s / 3600.0
        shed_cost = self.penalty_per_shed * result.shed
        p95 = result.ttft.p95_s
        if math.isnan(p95):
            if _breached(result, self.slo_p95_ttft_s):
                # Nothing served at all: charge as a total (1x) breach.
                return self.penalty_per_hour * hours + shed_cost
            return shed_cost
        excess = max(0.0, p95 / self.slo_p95_ttft_s - 1.0)
        return self.penalty_per_hour * hours * excess + shed_cost


@dataclass(frozen=True)
class StepSLOPenalty:
    """Flat dollars per hour while the p95 TTFT sits above the SLO."""

    slo_p95_ttft_s: float
    penalty_per_hour: float = 50.0
    penalty_per_shed: float = 0.0

    def __post_init__(self) -> None:
        if self.slo_p95_ttft_s <= 0:
            raise ValueError(
                f"slo_p95_ttft_s must be positive, got {self.slo_p95_ttft_s}"
            )
        if self.penalty_per_hour < 0 or self.penalty_per_shed < 0:
            raise ValueError("penalty rates must be >= 0")

    def __call__(self, result: FleetResult) -> float:
        hours = result.duration_s / 3600.0
        penalty = (
            self.penalty_per_hour * hours
            if _breached(result, self.slo_p95_ttft_s)
            else 0.0
        )
        return penalty + self.penalty_per_shed * result.shed


@dataclass(frozen=True)
class CostObjective:
    """Scores one simulated run in dollars: compute bill + SLO penalty.

    The compute bill is the run's provisioned pod-seconds priced at the
    profile's hourly c(G) — exactly what an elastic deployment pays,
    as opposed to Eq. (1)'s ``n * c(G)`` flat rate for a static one.
    """

    pricing: PricingTable
    penalty: SLOPenaltyFn

    def compute_cost(self, result: FleetResult, profile) -> float:
        """Pod-second bill of the run on ``profile``, in dollars."""
        return result.pod_hours * self.pricing.pod_cost(profile)

    def slo_penalty(self, result: FleetResult) -> float:
        """The penalty function's charge for the run, in dollars."""
        return float(self.penalty(result))

    def total(self, result: FleetResult, profile) -> float:
        """Full score of the run: compute bill plus SLO penalty."""
        return self.compute_cost(result, profile) + self.slo_penalty(result)


@dataclass(frozen=True)
class ElasticCandidate:
    """One configuration of the sweep: a policy between pod bounds.

    ``make_policy`` mints a fresh policy per run (policies may hold
    state); ``None`` means a static fleet of ``min_pods == max_pods``
    pods with no autoscaler at all — the baseline rungs of the curve.
    """

    policy: str
    min_pods: int
    max_pods: int
    make_policy: Callable[[], AutoscalePolicy] | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.min_pods < 1:
            raise ValueError(f"min_pods must be >= 1, got {self.min_pods}")
        if self.max_pods < self.min_pods:
            raise ValueError(
                f"max_pods {self.max_pods} must be >= min_pods {self.min_pods}"
            )
        if self.make_policy is None and self.min_pods != self.max_pods:
            raise ValueError("a static candidate needs min_pods == max_pods")

    @property
    def label(self) -> str:
        """Human-readable tag, e.g. ``threshold[1..6]`` or ``static[4]``."""
        if self.make_policy is None:
            return f"static[{self.min_pods}]"
        return f"{self.policy}[{self.min_pods}..{self.max_pods}]"


@dataclass
class TradePoint:
    """One point of the pod-hours-vs-SLO trade curve."""

    policy: str
    min_pods: int
    max_pods: int
    pod_hours: float
    compute_cost: float
    slo_penalty: float
    total_cost: float
    p95_ttft_s: float
    meets_slo: bool
    arrivals: int
    shed: int
    requests_completed: int
    scale_events: int
    denied_or_clipped: int
    result: FleetResult | None = field(default=None, repr=False)

    @property
    def label(self) -> str:
        """Human-readable tag matching the candidate that produced it."""
        if self.policy == "static":
            return f"static[{self.min_pods}]"
        return f"{self.policy}[{self.min_pods}..{self.max_pods}]"

    def as_dict(self) -> dict:
        """JSON-ready view (no simulation payload).

        A NaN tail (nothing served in the window) maps to ``None`` —
        bare ``NaN`` is not valid JSON and breaks strict parsers.
        """
        return {
            "policy": self.policy,
            "min_pods": self.min_pods,
            "max_pods": self.max_pods,
            "pod_hours": self.pod_hours,
            "compute_cost": self.compute_cost,
            "slo_penalty": self.slo_penalty,
            "total_cost": self.total_cost,
            "p95_ttft_s": None if math.isnan(self.p95_ttft_s) else self.p95_ttft_s,
            "meets_slo": self.meets_slo,
            "arrivals": self.arrivals,
            "shed": self.shed,
            "requests_completed": self.requests_completed,
            "scale_events": self.scale_events,
            "denied_or_clipped": self.denied_or_clipped,
        }


@dataclass
class ElasticRecommendation:
    """The sweep's answer: a config, its curve, and savings vs static.

    ``static`` is the peak-sized static baseline (Eq. 2's pod count when
    the sweep was invoked through ``GPURecommendationTool``, otherwise
    the smallest simulated static fleet that met the SLO); ``curve``
    holds every evaluated candidate including the static sizing ladder.
    """

    profile: str
    slo_p95_ttft_s: float
    chosen: TradePoint
    static: TradePoint
    curve: list[TradePoint] = field(default_factory=list)
    static_recommendation: object | None = field(default=None, repr=False)

    @property
    def savings(self) -> float:
        """Dollars saved vs the static baseline over the simulated window."""
        return self.static.total_cost - self.chosen.total_cost

    @property
    def savings_fraction(self) -> float:
        """Savings as a fraction of the static baseline's cost."""
        if self.static.total_cost <= 0:
            return 0.0
        return self.savings / self.static.total_cost

    @property
    def meets_slo(self) -> bool:
        """Did the chosen configuration keep the p95 TTFT inside the SLO?"""
        return self.chosen.meets_slo

    def as_dict(self) -> dict:
        """JSON-ready view of the recommendation and its trade curve."""
        return {
            "profile": self.profile,
            "slo_p95_ttft_s": self.slo_p95_ttft_s,
            "chosen": self.chosen.as_dict(),
            "static": self.static.as_dict(),
            "curve": [p.as_dict() for p in self.curve],
            "savings": self.savings,
            "savings_fraction": self.savings_fraction,
            "meets_slo": self.meets_slo,
        }


def default_candidates(
    slo_p95_ttft_s: float,
    max_pods: int,
    requests_per_pod_per_s: float,
    min_pods: int = 1,
    target_utilization: float = 0.5,
    policy_slo_fraction: float = 0.25,
) -> list[ElasticCandidate]:
    """The standard sweep: all three adaptive policies between the bounds.

    The threshold policy reacts at ``policy_slo_fraction`` of the
    end-to-end SLO: the run's p95 includes every scale-up transient, so
    a policy that only moves once the *windowed* tail breaches the full
    SLO has already lost it for the run. Reacting early keeps the
    end-to-end tail inside the target.
    """
    if not 0.0 < policy_slo_fraction <= 1.0:
        raise ValueError(
            f"policy_slo_fraction must be in (0, 1], got {policy_slo_fraction}"
        )
    return [
        ElasticCandidate(
            "threshold",
            min_pods,
            max_pods,
            lambda: ThresholdPolicy(
                slo_p95_ttft_s=policy_slo_fraction * slo_p95_ttft_s
            ),
        ),
        ElasticCandidate(
            "target-utilization",
            min_pods,
            max_pods,
            lambda: TargetUtilizationPolicy(target=target_utilization),
        ),
        ElasticCandidate(
            "predictive",
            min_pods,
            max_pods,
            lambda: PredictivePolicy(requests_per_pod_per_s=requests_per_pod_per_s),
        ),
    ]


@dataclass
class ElasticOptions:
    """What ``GPURecommendationTool.recommend(elastic=...)`` needs to sweep.

    The static pipeline (Eqs. 1-3) knows nothing about traffic over
    time; these options supply the missing dynamic context: the workload
    generator and seeded traffic factory to simulate under, the cost
    objective, and the sweep's knobs. ``max_batch_weight`` is tuned for
    the recommended profile when left ``None`` (the per-profile tuning
    the characterization tool performs).
    """

    generator: "WorkloadGenerator"
    traffic_factory: Callable[[], "TrafficModel"]
    objective: CostObjective
    slo_p95_ttft_s: float
    duration_s: float
    warmup_s: float = 0.0
    candidates: Sequence[ElasticCandidate] | None = None
    headroom: int = 2
    max_batch_weight: int | None = None
    seed: int = 0
    decision_interval_s: float = 15.0
    cold_start_s: float = 10.0
    metrics_window_s: float = 30.0
    router_factory: Callable[[], Router] | None = None


class ElasticRecommender:
    """Sweeps autoscaling configs through the fleet simulator and scores them.

    ``traffic_factory`` must return a *fresh, identically seeded* traffic
    model on every call — each candidate replays the same arrival
    process, and the deployment's workload stream label is held fixed,
    so two candidates differ only in how the fleet resizes itself.
    """

    def __init__(
        self,
        deployment: "Deployment",
        traffic_factory: Callable[[], "TrafficModel"],
        objective: CostObjective,
        slo_p95_ttft_s: float,
        duration_s: float,
        warmup_s: float = 0.0,
        decision_interval_s: float = 15.0,
        cold_start_s: float = 10.0,
        metrics_window_s: float = 30.0,
        router_factory: Callable[[], Router] | None = None,
        stream_label: object = "elastic",
    ) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if slo_p95_ttft_s <= 0:
            raise ValueError(f"slo_p95_ttft_s must be positive, got {slo_p95_ttft_s}")
        # The sweep's premise is that every candidate faces the *same*
        # offered load. Purely completion-driven (closed-loop) traffic
        # has no scheduled arrivals — arrivals adapt to each candidate's
        # service rate, so a slow candidate would throttle its own load
        # and "save" money by serving less work. Reject it up front.
        if traffic_factory().peek() is None:
            raise ValueError(
                "ElasticRecommender needs an open-loop (scheduled-arrival) "
                "traffic model: closed-loop arrivals adapt to each "
                "candidate's service rate, so candidates would not face "
                "identical traffic and cost savings would be meaningless"
            )
        self.deployment = deployment
        self.traffic_factory = traffic_factory
        self.objective = objective
        self.slo_p95_ttft_s = float(slo_p95_ttft_s)
        self.duration_s = float(duration_s)
        self.warmup_s = float(warmup_s)
        self.decision_interval_s = float(decision_interval_s)
        self.cold_start_s = float(cold_start_s)
        self.metrics_window_s = float(metrics_window_s)
        self.router_factory = router_factory
        self.stream_label = stream_label

    # ---- one candidate ----------------------------------------------------

    def evaluate(self, candidate: ElasticCandidate) -> TradePoint:
        """Simulate one candidate and score it with the objective."""
        autoscaler = None
        if candidate.make_policy is not None:
            autoscaler = Autoscaler(
                candidate.make_policy(),
                AutoscaleConfig(
                    decision_interval_s=self.decision_interval_s,
                    min_pods=candidate.min_pods,
                    max_pods=candidate.max_pods,
                    cold_start_s=self.cold_start_s,
                    metrics_window_s=self.metrics_window_s,
                ),
            )
        deployment = self.deployment.scale(candidate.min_pods)
        router = self.router_factory() if self.router_factory else None
        result = deployment.simulate(
            self.traffic_factory(),
            duration_s=self.duration_s,
            router=router,
            warmup_s=self.warmup_s,
            stream_label=self.stream_label,
            keep_samples=False,
            autoscaler=autoscaler,
        )
        result.verify_conservation()
        profile = self.deployment.profile
        compute = self.objective.compute_cost(result, profile)
        penalty = self.objective.slo_penalty(result)
        return TradePoint(
            policy="static" if candidate.make_policy is None else candidate.policy,
            min_pods=candidate.min_pods,
            max_pods=candidate.max_pods,
            pod_hours=result.pod_hours,
            compute_cost=compute,
            slo_penalty=penalty,
            total_cost=compute + penalty,
            p95_ttft_s=result.ttft.p95_s,
            meets_slo=not _breached(result, self.slo_p95_ttft_s),
            arrivals=result.arrivals,
            shed=result.shed,
            requests_completed=result.requests_completed,
            scale_events=len(result.scale_events),
            denied_or_clipped=sum(1 for e in result.scale_events if e.constraint),
            result=result,
        )

    # ---- the sweep --------------------------------------------------------

    def evaluate_many(
        self, candidates: Sequence[ElasticCandidate], jobs: int = 1
    ) -> list[TradePoint]:
        """Evaluate candidates, in candidate order, optionally in parallel.

        Every candidate already replays an identically seeded arrival
        process with no shared mutable state, so evaluation order cannot
        influence any result — :func:`~repro.utils.parallel.fork_map`
        with ``jobs > 1`` fans the same calls across worker processes
        and returns the byte-identical list the serial loop produces.
        """
        return fork_map(self.evaluate, candidates, jobs)

    def peak_static_pods(
        self, search_max: int = 8, jobs: int = 1
    ) -> tuple[int, list[TradePoint]]:
        """Autoscaler-in-the-loop sizing of the *static* baseline.

        Simulates static fleets of 1..``search_max`` pods under the same
        traffic until the smallest SLO-meeting count is found — the
        "peak-sized" fleet the paper's fixed answer corresponds to. The
        whole ladder is returned as trade-curve points. When even
        ``search_max`` pods breach, the largest is returned (honest
        infeasibility: its penalty dominates its score).

        With ``jobs > 1`` every rung is simulated concurrently and the
        ladder is truncated at the first SLO-meeting rung afterwards —
        the returned value is identical to the serial early-stopping
        climb (each rung's simulation is independent), it just trades
        some wasted work above the answer for wall-clock time.
        """
        if search_max < 1:
            raise ValueError(f"search_max must be >= 1, got {search_max}")
        rungs = [
            ElasticCandidate("static", n_pods, n_pods)
            for n_pods in range(1, search_max + 1)
        ]
        ladder: list[TradePoint] = []
        if jobs > 1:
            for point in self.evaluate_many(rungs, jobs):
                ladder.append(point)
                if point.meets_slo:
                    break
        else:
            for rung in rungs:
                point = self.evaluate(rung)
                ladder.append(point)
                if point.meets_slo:
                    break
        return len(ladder), ladder

    def recommend(
        self,
        candidates: Sequence[ElasticCandidate] | None = None,
        static_pods: int | None = None,
        search_max: int = 8,
        headroom: int = 2,
        jobs: int = 1,
    ) -> ElasticRecommendation:
        """Run the sweep and pick the cheapest SLO-meeting configuration.

        ``static_pods`` pins the peak-sized baseline (e.g. Eq. 2's pod
        count); left ``None``, the static sizing ladder finds it by
        simulation. Default candidates sweep the three adaptive policies
        between 1 and ``static_pods + headroom`` pods, with the
        predictive policy's per-pod service rate estimated from the
        baseline run itself. Selection prefers SLO-meeting points, then
        the lowest total cost, then the fewest pod-hours; ``static``
        points compete on equal terms, so the recommendation degrades
        gracefully to "stay static" when elasticity does not pay.

        ``jobs > 1`` distributes the ladder and the candidate sweep
        across worker processes; every candidate keeps its own
        deterministic seed, so the recommendation is byte-identical to
        the ``jobs=1`` serial sweep.
        """
        ladder: list[TradePoint] = []
        if static_pods is None:
            static_pods, ladder = self.peak_static_pods(search_max, jobs=jobs)
            static_point = ladder[-1]
        else:
            if static_pods < 1:
                raise ValueError(f"static_pods must be >= 1, got {static_pods}")
            static_point = self.evaluate(
                ElasticCandidate("static", static_pods, static_pods)
            )
            ladder = [static_point]
        if candidates is None:
            candidates = default_candidates(
                self.slo_p95_ttft_s,
                max_pods=static_pods + headroom,
                requests_per_pod_per_s=self._per_pod_rate(static_point, static_pods),
            )
        curve = ladder + self.evaluate_many(candidates, jobs)
        chosen = min(
            curve,
            key=lambda p: (not p.meets_slo, p.total_cost, p.pod_hours),
        )
        return ElasticRecommendation(
            profile=self.deployment.profile.name,
            slo_p95_ttft_s=self.slo_p95_ttft_s,
            chosen=chosen,
            static=static_point,
            curve=curve,
        )

    def _per_pod_rate(self, static_point: TradePoint, static_pods: int) -> float:
        """Sustainable per-pod arrival rate, from the baseline run.

        The peak-sized static fleet serves the whole offered load by
        construction, so its mean per-pod completion rate is a usable
        service-capacity estimate for the predictive policy.
        """
        rate = static_point.requests_completed / self.duration_s / static_pods
        return max(rate, 1e-6)
