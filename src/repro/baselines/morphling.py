"""Morphling baseline (Wang et al., SoCC'21).

Morphling meta-learns a performance model over historical configurations
and *fine-tunes* it on a handful of measurements of the new service —
here, the unseen LLM's measurements on the two reference profiles. We
implement the meta-model as the PerfNetV2-style joint MLP and the
adaptation step as warm-started gradient descent on the reference rows.
"""

from __future__ import annotations

import copy
from collections.abc import Sequence

import numpy as np

from repro.baselines.perfnet import PerfNetRecommender, _LOG_FLOOR
from repro.characterization.dataset import PerfDataset
from repro.models.llm import LLMSpec

__all__ = ["MorphlingRecommender"]


class MorphlingRecommender(PerfNetRecommender):
    """Meta-trained MLP fine-tuned on reference measurements."""

    name = "Morphling"
    requires_reference = True
    hidden_layers = (64, 64)
    joint_outputs = True

    def __init__(self, finetune_epochs: int = 150, **kwargs) -> None:
        super().__init__(**kwargs)
        self.finetune_epochs = finetune_epochs
        self._meta_models: list | None = None
        self._test_llm: str | None = None
        self._llm_lookup: dict[str, LLMSpec] = {}

    def fit(self, train: PerfDataset, llm_lookup: dict[str, LLMSpec]) -> None:
        super().fit(train, llm_lookup)
        self._llm_lookup = dict(llm_lookup)
        # Keep pristine meta-parameters; each unseen LLM fine-tunes a copy.
        self._meta_models = [copy.deepcopy(m) for m in self._models]

    def observe_reference(self, llm: LLMSpec, reference: PerfDataset) -> None:
        if self._meta_models is None:
            raise RuntimeError("fit must be called before observe_reference")
        self._models = [copy.deepcopy(m) for m in self._meta_models]
        self._test_llm = llm.name
        rows = [
            (llm, r.profile, r.concurrent_users) for r in reference.records
        ]
        if not rows:
            return  # nothing to adapt on (reference profiles infeasible)
        X = self._feature_space.transform(rows)
        y1 = reference.column("nttft_median_s")
        y2 = reference.column("itl_median_s")
        ok = np.isfinite(y1) & np.isfinite(y2)
        if not np.any(ok):
            return
        Xs = self._scaler.transform(X[ok])
        targets = np.column_stack(
            [
                np.log(np.maximum(y1[ok], _LOG_FLOOR)),
                np.log(np.maximum(y2[ok], _LOG_FLOOR)),
            ]
        )
        self._models[0].partial_fit(Xs, targets, n_epochs=self.finetune_epochs)
