"""Static policy baseline (paper §V-C).

No performance prediction: always recommend a fixed (GPU profile, pod
count). The paper considered a broad range of static policies and
reported the one with the highest S/O score (4 pods of 1xA100). Our
implementation searches the candidate policies on the *training* LLMs'
measured data and picks the best-scoring one — the honest analogue.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import BaseRecommender
from repro.characterization.dataset import PerfDataset
from repro.evaluation.metrics import RecommendationOutcome, score_outcomes
from repro.evaluation.oracle import best_deployment, true_umax
from repro.hardware.pricing import PricingTable, aws_like_pricing
from repro.hardware.profile import parse_profile
from repro.models.llm import LLMSpec
from repro.recommendation.recommender import Recommendation
from repro.recommendation.weights import LatencyConstraints

__all__ = ["StaticRecommender"]

_DEFAULT_POD_CHOICES = (1, 2, 3, 4, 6, 8, 12, 16)


class StaticRecommender(BaseRecommender):
    """Fixed-deployment policy selected for best training-set S/O."""

    name = "Static"
    requires_reference = False

    def __init__(
        self,
        constraints: LatencyConstraints | None = None,
        total_users: int = 200,
        pricing: PricingTable | None = None,
        pod_choices: Sequence[int] = _DEFAULT_POD_CHOICES,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.constraints = constraints or LatencyConstraints(nttft_s=0.1, itl_s=0.05)
        self.total_users = total_users
        self.pricing = pricing or aws_like_pricing()
        self.pod_choices = tuple(pod_choices)
        self.policy_: tuple[str, int] | None = None

    def fit(self, train: PerfDataset, llm_lookup: dict[str, LLMSpec]) -> None:
        profiles = train.profiles()
        llms = train.llms()
        oracle = {
            m: best_deployment(
                train, m, profiles, self.pricing, self.constraints, self.total_users
            )
            for m in llms
        }
        best_policy = None
        best_so = -1.0
        for profile in profiles:
            pod_cost = self.pricing.pod_cost(parse_profile(profile))
            for pods in self.pod_choices:
                outcomes = []
                for m in llms:
                    o = oracle[m]
                    outcomes.append(
                        RecommendationOutcome(
                            llm=m,
                            recommended_profile=profile,
                            n_pods=pods,
                            recommended_cost=pods * pod_cost,
                            true_umax=true_umax(train, m, profile, self.constraints),
                            oracle_profile=o.profile if o else None,
                            oracle_cost=o.total_cost if o else float("nan"),
                            total_users=self.total_users,
                        )
                    )
                so = score_outcomes("static-candidate", outcomes).so
                if so > best_so:
                    best_so = so
                    best_policy = (profile, pods)
        if best_policy is None:
            raise RuntimeError("no static policy could be scored")
        self.policy_ = best_policy

    def predict_latencies(
        self, llm: LLMSpec, profile: str, user_counts: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError("the static policy makes no predictions")

    def recommend(
        self,
        llm: LLMSpec,
        profiles: Sequence[str],
        pricing: PricingTable,
        constraints: LatencyConstraints,
        total_users: int,
    ) -> Recommendation:
        if self.policy_ is None:
            raise RuntimeError("fit must be called before recommend")
        profile, pods = self.policy_
        cost = pods * pricing.pod_cost(parse_profile(profile))
        return Recommendation(profile=profile, n_pods=pods, total_cost=cost)
