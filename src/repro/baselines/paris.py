"""PARIS baseline (Yadwadkar et al., SoCC'17) adapted to GPU profiles.

PARIS measures the unseen application on two reference VM types (here:
the weakest and strongest GPU profiles) and feeds those measurements,
together with the application/VM features, into a random-forest
predictor. Reference measurements comprise nTTFT, ITL and throughput
across all user counts on both reference profiles (paper §V-C).

Training LLMs use their own reference-profile rows as the reference
features; missing entries (reference profile infeasible for that LLM —
common for 1xT4) are imputed with the training-column median.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence

import numpy as np

from repro.baselines.rf import RFRecommender
from repro.characterization.dataset import PerfDataset
from repro.models.llm import LLMSpec

__all__ = ["PARISRecommender"]

_REF_METRICS = ("nttft_median_s", "itl_median_s", "throughput_tokens_per_s")


class PARISRecommender(RFRecommender):
    """RF + reference measurements on the weakest/strongest profiles."""

    name = "PARIS"
    requires_reference = True

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._ref_medians: np.ndarray | None = None
        self._ref_features: dict[str, np.ndarray] = {}
        self._test_ref: np.ndarray | None = None
        self._test_llm: str | None = None

    # ---- reference feature construction ------------------------------------

    def _reference_vector(self, data: PerfDataset, llm: str) -> np.ndarray:
        """Flatten the LLM's reference-profile measurements (NaN = missing)."""
        vec = []
        for prof in self.reference_profiles:
            for metric in _REF_METRICS:
                users, values = data.series(llm, prof, metric)
                by_user = dict(zip(users.tolist(), values.tolist()))
                for u in self.user_counts:
                    vec.append(by_user.get(u, float("nan")))
        return np.array(vec)

    def fit(self, train: PerfDataset, llm_lookup: dict[str, LLMSpec]) -> None:
        self._ref_features = {
            name: self._reference_vector(train, name) for name in train.llms()
        }
        stacked = np.vstack(list(self._ref_features.values()))
        with warnings.catch_warnings():
            # Columns can be all-NaN when a reference profile hosts none of
            # the training LLMs (common for 1xT4); they impute to 0 below.
            warnings.simplefilter("ignore", category=RuntimeWarning)
            medians = np.nanmedian(stacked, axis=0)
        self._ref_medians = np.where(np.isfinite(medians), medians, 0.0)
        super().fit(train, llm_lookup)

    def _training_matrix(self, train, llm_lookup):
        X, y1, y2 = super()._training_matrix(train, llm_lookup)
        refs = np.vstack(
            [self._impute(self._ref_features[r.llm]) for r in train.records]
        )
        return np.hstack([X, refs]), y1, y2

    def _impute(self, vec: np.ndarray) -> np.ndarray:
        return np.where(np.isfinite(vec), vec, self._ref_medians)

    # ---- unseen-LLM path ---------------------------------------------------------

    def observe_reference(self, llm: LLMSpec, reference: PerfDataset) -> None:
        self._test_llm = llm.name
        self._test_ref = self._impute(self._reference_vector(reference, llm.name))

    def predict_latencies(
        self, llm: LLMSpec, profile: str, user_counts: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._model_nttft is None:
            raise RuntimeError("fit must be called before predict_latencies")
        if self._test_ref is None or self._test_llm != llm.name:
            raise RuntimeError(
                "PARIS needs observe_reference() for the unseen LLM first"
            )
        rows = [(llm, profile, int(u)) for u in user_counts]
        X = self._feature_space.transform(rows)
        refs = np.tile(self._test_ref, (len(rows), 1))
        X = np.hstack([X, refs])
        return self._model_nttft.predict(X), self._model_itl.predict(X)
