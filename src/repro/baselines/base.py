"""Common interface for recommendation methods (LLM-Pilot and baselines).

Every method fits on the historical characterization data of the
*training* LLMs, optionally observes reference measurements of the unseen
LLM on two reference GPU profiles (PARIS, Selecta and Morphling do; the
paper marks them with a triangle in Fig 8), predicts latencies, and
recommends through the shared Eq. (1)-(3) machinery.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from repro.characterization.dataset import PerfDataset
from repro.characterization.loadtest import DEFAULT_USER_COUNTS
from repro.hardware.pricing import PricingTable
from repro.models.llm import LLMSpec
from repro.recommendation.recommender import (
    Recommendation,
    recommend_from_predictions,
)
from repro.recommendation.weights import LatencyConstraints

__all__ = ["BaseRecommender", "REFERENCE_PROFILES"]

#: The paper's reference profiles: the weakest and the most powerful
#: in terms of memory and compute (§V-C).
REFERENCE_PROFILES: tuple[str, str] = ("1xT4-16GB", "4xH100-80GB")


class BaseRecommender(abc.ABC):
    """Interface shared by LLM-Pilot and all §V-C baselines."""

    #: Display name used in the Fig 8 reproduction.
    name: str = "base"
    #: Whether the method performs reference measurements of the unseen LLM.
    requires_reference: bool = False
    reference_profiles: tuple[str, str] = REFERENCE_PROFILES

    def __init__(self, user_counts: Sequence[int] = DEFAULT_USER_COUNTS) -> None:
        self.user_counts = list(user_counts)

    @abc.abstractmethod
    def fit(self, train: PerfDataset, llm_lookup: dict[str, LLMSpec]) -> None:
        """Train on the historical characterization data."""

    def observe_reference(self, llm: LLMSpec, reference: PerfDataset) -> None:
        """Receive the unseen LLM's measurements on the reference profiles.

        Only called when ``requires_reference`` is True.
        """
        raise NotImplementedError(f"{self.name} does not use reference data")

    @abc.abstractmethod
    def predict_latencies(
        self, llm: LLMSpec, profile: str, user_counts: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(nTTFT, ITL) predictions for one profile across user counts."""

    def recommend(
        self,
        llm: LLMSpec,
        profiles: Sequence[str],
        pricing: PricingTable,
        constraints: LatencyConstraints,
        total_users: int,
    ) -> Recommendation:
        """Default Eq. (1)-(3) recommendation from predicted latencies."""
        return recommend_from_predictions(
            predictor=self.predict_latencies,
            llm=llm,
            profiles=profiles,
            pricing=pricing,
            constraints=constraints,
            total_users=total_users,
            user_counts=self.user_counts,
        )
