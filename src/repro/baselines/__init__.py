"""Recommendation baselines from the paper's §V-C evaluation."""

from repro.baselines.base import BaseRecommender, REFERENCE_PROFILES
from repro.baselines.static import StaticRecommender
from repro.baselines.rf import RFRecommender
from repro.baselines.paris import PARISRecommender
from repro.baselines.selecta import SelectaRecommender
from repro.baselines.perfnet import PerfNetRecommender, PerfNetV2Recommender
from repro.baselines.morphling import MorphlingRecommender

__all__ = [
    "BaseRecommender",
    "REFERENCE_PROFILES",
    "StaticRecommender",
    "RFRecommender",
    "PARISRecommender",
    "SelectaRecommender",
    "PerfNetRecommender",
    "PerfNetV2Recommender",
    "MorphlingRecommender",
]
