"""Random-forest baseline: features only, no reference measurements.

This is the paper's "RF" method — PARIS's regressor without the
reference performance measurements — used to isolate how much those
measurements contribute.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import BaseRecommender
from repro.characterization.dataset import PerfDataset
from repro.ml.forest import RandomForestRegressor
from repro.models.llm import LLMSpec
from repro.recommendation.features import FeatureSpace

__all__ = ["RFRecommender"]


class RFRecommender(BaseRecommender):
    """Two random forests (nTTFT, ITL) over LLM+GPU+load features."""

    name = "RF"
    requires_reference = False

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 12,
        random_state: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.random_state = random_state
        self._feature_space: FeatureSpace | None = None
        self._model_nttft: RandomForestRegressor | None = None
        self._model_itl: RandomForestRegressor | None = None

    def _make_forest(self) -> RandomForestRegressor:
        return RandomForestRegressor(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            random_state=self.random_state,
        )

    def _training_matrix(
        self, train: PerfDataset, llm_lookup: dict[str, LLMSpec]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows = [
            (llm_lookup[r.llm], r.profile, r.concurrent_users) for r in train.records
        ]
        X = self._feature_space.transform(rows)
        y1 = train.column("nttft_median_s")
        y2 = train.column("itl_median_s")
        return X, y1, y2

    def fit(self, train: PerfDataset, llm_lookup: dict[str, LLMSpec]) -> None:
        llms = [llm_lookup[name] for name in train.llms()]
        self._feature_space = FeatureSpace.fit(llms)
        X, y1, y2 = self._training_matrix(train, llm_lookup)
        ok = np.isfinite(y1) & np.isfinite(y2)
        self._model_nttft = self._make_forest().fit(X[ok], y1[ok])
        self._model_itl = self._make_forest().fit(X[ok], y2[ok])

    def predict_latencies(
        self, llm: LLMSpec, profile: str, user_counts: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._model_nttft is None:
            raise RuntimeError("fit must be called before predict_latencies")
        rows = [(llm, profile, int(u)) for u in user_counts]
        X = self._feature_space.transform(rows)
        return self._model_nttft.predict(X), self._model_itl.predict(X)
