"""Selecta baseline (Klimovic et al., ATC'18).

Selecta builds a sparse matrix of known (application, configuration)
performance entries and completes it by collaborative filtering. Here
rows are LLMs and columns are (GPU profile, user count, metric) triples;
the unseen LLM contributes only its reference-profile columns. Entries
are log-transformed before factorization because latencies span orders
of magnitude (the MF is trained on a roughly additive scale, as the
original work's normalized runtimes were).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import BaseRecommender
from repro.characterization.dataset import PerfDataset
from repro.ml.cf import MatrixFactorization
from repro.models.llm import LLMSpec

__all__ = ["SelectaRecommender"]

_METRICS = ("nttft_median_s", "itl_median_s")
_LOG_FLOOR = 1e-7


class SelectaRecommender(BaseRecommender):
    """Matrix-factorization completion of the performance matrix."""

    name = "Selecta"
    requires_reference = True

    def __init__(
        self,
        n_factors: int = 8,
        n_epochs: int = 150,
        learning_rate: float = 0.01,
        reg: float = 0.05,
        random_state: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.n_factors = n_factors
        self.n_epochs = n_epochs
        self.learning_rate = learning_rate
        self.reg = reg
        self.random_state = random_state
        self._train: PerfDataset | None = None
        self._reference: PerfDataset | None = None
        self._test_llm: str | None = None
        self._col_index: dict[tuple[str, int, str], int] = {}
        self._row_index: dict[str, int] = {}
        self._completed: np.ndarray | None = None

    def fit(self, train: PerfDataset, llm_lookup: dict[str, LLMSpec]) -> None:
        self._train = train
        self._completed = None
        # Column space: every (profile, users, metric) seen in training.
        cols: dict[tuple[str, int, str], None] = {}
        for r in train.records:
            for m in _METRICS:
                cols.setdefault((r.profile, r.concurrent_users, m), None)
        self._col_index = {key: j for j, key in enumerate(cols)}
        self._row_index = {name: i for i, name in enumerate(train.llms())}

    def observe_reference(self, llm: LLMSpec, reference: PerfDataset) -> None:
        self._reference = reference
        self._test_llm = llm.name
        self._completed = None

    # ---- factorization ------------------------------------------------------

    def _observations(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        users, items, values = [], [], []

        def emit(row: int, dataset: PerfDataset) -> None:
            for r in dataset.records:
                for m in _METRICS:
                    key = (r.profile, r.concurrent_users, m)
                    j = self._col_index.get(key)
                    if j is None:
                        continue
                    v = getattr(r, m)
                    if not np.isfinite(v):
                        continue
                    users.append(row)
                    items.append(j)
                    values.append(np.log(max(v, _LOG_FLOOR)))

        for name, i in self._row_index.items():
            emit(i, self._train.filter(llm=name))
        test_row = len(self._row_index)
        if self._reference is not None:
            emit(test_row, self._reference)
        return np.array(users), np.array(items), np.array(values)

    def _complete(self) -> np.ndarray:
        if self._completed is not None:
            return self._completed
        if self._train is None:
            raise RuntimeError("fit must be called before predicting")
        if self._reference is None:
            raise RuntimeError("Selecta needs observe_reference() first")
        u, i, v = self._observations()
        mf = MatrixFactorization(
            n_factors=self.n_factors,
            n_epochs=self.n_epochs,
            learning_rate=self.learning_rate,
            reg=self.reg,
            random_state=self.random_state,
        )
        mf.fit(u, i, v, n_users=len(self._row_index) + 1, n_items=len(self._col_index))
        self._completed = np.exp(mf.predict_full())
        return self._completed

    # ---- prediction -------------------------------------------------------------

    def predict_latencies(
        self, llm: LLMSpec, profile: str, user_counts: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._test_llm != llm.name:
            raise RuntimeError("observe_reference() must be called for this LLM")
        matrix = self._complete()
        test_row = len(self._row_index)
        out = {m: np.full(len(user_counts), np.nan) for m in _METRICS}
        for k, u in enumerate(user_counts):
            for m in _METRICS:
                j = self._col_index.get((profile, int(u), m))
                if j is not None:
                    out[m][k] = matrix[test_row, j]
        return out["nttft_median_s"], out["itl_median_s"]
