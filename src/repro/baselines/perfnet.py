"""PerfNet / PerfNetV2 baselines (Wang et al., RACS'20 / ACR'21).

Neural-network performance models over platform + workload features, with
no reference measurements of the unseen model. PerfNet uses a compact
single-hidden-layer network per latency target; PerfNetV2 is the deeper
refinement predicting both targets jointly. Targets are log-transformed
(latencies span orders of magnitude) and features standardized.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import BaseRecommender
from repro.characterization.dataset import PerfDataset
from repro.ml.mlp import MLPRegressor
from repro.ml.preprocessing import StandardScaler
from repro.models.llm import LLMSpec
from repro.recommendation.features import FeatureSpace

__all__ = ["PerfNetRecommender", "PerfNetV2Recommender"]

_LOG_FLOOR = 1e-7


class PerfNetRecommender(BaseRecommender):
    """PerfNet: one small MLP per latency metric."""

    name = "PerfNet"
    requires_reference = False
    hidden_layers: tuple[int, ...] = (64,)
    joint_outputs = False

    def __init__(
        self,
        n_epochs: int = 250,
        learning_rate: float = 1e-3,
        random_state: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.n_epochs = n_epochs
        self.learning_rate = learning_rate
        self.random_state = random_state
        self._feature_space: FeatureSpace | None = None
        self._scaler: StandardScaler | None = None
        self._models: list[MLPRegressor] = []

    def _make_mlp(self, seed_offset: int) -> MLPRegressor:
        return MLPRegressor(
            hidden_layers=self.hidden_layers,
            learning_rate=self.learning_rate,
            n_epochs=self.n_epochs,
            random_state=self.random_state + seed_offset,
        )

    def fit(self, train: PerfDataset, llm_lookup: dict[str, LLMSpec]) -> None:
        llms = [llm_lookup[name] for name in train.llms()]
        self._feature_space = FeatureSpace.fit(llms)
        rows = [
            (llm_lookup[r.llm], r.profile, r.concurrent_users) for r in train.records
        ]
        X = self._feature_space.transform(rows)
        y1 = train.column("nttft_median_s")
        y2 = train.column("itl_median_s")
        ok = np.isfinite(y1) & np.isfinite(y2)
        self._scaler = StandardScaler().fit(X[ok])
        Xs = self._scaler.transform(X[ok])
        t1 = np.log(np.maximum(y1[ok], _LOG_FLOOR))
        t2 = np.log(np.maximum(y2[ok], _LOG_FLOOR))
        if self.joint_outputs:
            model = self._make_mlp(0)
            model.fit(Xs, np.column_stack([t1, t2]))
            self._models = [model]
        else:
            m1 = self._make_mlp(0)
            m1.fit(Xs, t1)
            m2 = self._make_mlp(1)
            m2.fit(Xs, t2)
            self._models = [m1, m2]

    def _predict_log(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        Xs = self._scaler.transform(X)
        if self.joint_outputs:
            out = self._models[0].predict(Xs)
            return out[:, 0], out[:, 1]
        return self._models[0].predict(Xs), self._models[1].predict(Xs)

    def predict_latencies(
        self, llm: LLMSpec, profile: str, user_counts: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        if not self._models:
            raise RuntimeError("fit must be called before predict_latencies")
        rows = [(llm, profile, int(u)) for u in user_counts]
        X = self._feature_space.transform(rows)
        log1, log2 = self._predict_log(X)
        return np.exp(log1), np.exp(log2)


class PerfNetV2Recommender(PerfNetRecommender):
    """PerfNetV2: deeper network, joint (nTTFT, ITL) prediction."""

    name = "PerfNetV2"
    hidden_layers = (128, 64, 32)
    joint_outputs = True
