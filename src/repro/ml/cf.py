"""Collaborative filtering by biased matrix factorization.

Backs the Selecta baseline (§V-C): Selecta builds a sparse matrix of
known (application, configuration) runtimes and predicts the missing
entries via collaborative filtering (the original work used the
Surprise library's SVD — the classic Funk-SVD biased matrix
factorization trained by SGD, which is what we implement here).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MatrixFactorization"]


class MatrixFactorization:
    """Funk-SVD: r_ui ~ mu + b_u + b_i + p_u . q_i, trained with SGD."""

    def __init__(
        self,
        n_factors: int = 8,
        n_epochs: int = 200,
        learning_rate: float = 0.01,
        reg: float = 0.05,
        random_state: int = 0,
    ) -> None:
        if n_factors < 1:
            raise ValueError("n_factors must be >= 1")
        self.n_factors = n_factors
        self.n_epochs = n_epochs
        self.learning_rate = learning_rate
        self.reg = reg
        self.random_state = random_state
        self.global_mean_: float = 0.0
        self.user_bias_: np.ndarray | None = None
        self.item_bias_: np.ndarray | None = None
        self.user_factors_: np.ndarray | None = None
        self.item_factors_: np.ndarray | None = None
        self.n_users_: int = 0
        self.n_items_: int = 0

    def fit(
        self,
        users: np.ndarray,
        items: np.ndarray,
        ratings: np.ndarray,
        n_users: int | None = None,
        n_items: int | None = None,
    ) -> "MatrixFactorization":
        """Fit on observed entries (user index, item index, value)."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        ratings = np.asarray(ratings, dtype=float)
        if not (len(users) == len(items) == len(ratings)):
            raise ValueError("users/items/ratings length mismatch")
        if len(users) == 0:
            raise ValueError("cannot fit on zero observations")
        self.n_users_ = int(users.max()) + 1 if n_users is None else n_users
        self.n_items_ = int(items.max()) + 1 if n_items is None else n_items
        if users.min() < 0 or items.min() < 0:
            raise ValueError("indices must be non-negative")
        if users.max() >= self.n_users_ or items.max() >= self.n_items_:
            raise ValueError("index out of declared range")

        rng = np.random.default_rng(self.random_state)
        self.global_mean_ = float(ratings.mean())
        bu = np.zeros(self.n_users_)
        bi = np.zeros(self.n_items_)
        P = rng.normal(0.0, 0.1, size=(self.n_users_, self.n_factors))
        Q = rng.normal(0.0, 0.1, size=(self.n_items_, self.n_factors))

        lr, reg, mu = self.learning_rate, self.reg, self.global_mean_
        n_obs = len(ratings)
        for _ in range(self.n_epochs):
            order = rng.permutation(n_obs)
            for k in order:
                u, i, r = users[k], items[k], ratings[k]
                pred = mu + bu[u] + bi[i] + P[u] @ Q[i]
                err = r - pred
                bu[u] += lr * (err - reg * bu[u])
                bi[i] += lr * (err - reg * bi[i])
                pu = P[u].copy()
                P[u] += lr * (err * Q[i] - reg * P[u])
                Q[i] += lr * (err * pu - reg * Q[i])

        self.user_bias_, self.item_bias_ = bu, bi
        self.user_factors_, self.item_factors_ = P, Q
        return self

    def predict(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        if self.user_factors_ is None:
            raise RuntimeError("model must be fit before predict")
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.max(initial=-1) >= self.n_users_ or items.max(initial=-1) >= self.n_items_:
            raise ValueError("index out of range")
        return (
            self.global_mean_
            + self.user_bias_[users]
            + self.item_bias_[items]
            + np.einsum("ij,ij->i", self.user_factors_[users], self.item_factors_[items])
        )

    def predict_full(self) -> np.ndarray:
        """The completed (n_users, n_items) matrix."""
        if self.user_factors_ is None:
            raise RuntimeError("model must be fit before predict_full")
        return (
            self.global_mean_
            + self.user_bias_[:, None]
            + self.item_bias_[None, :]
            + self.user_factors_ @ self.item_factors_.T
        )
