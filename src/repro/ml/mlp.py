"""Multi-layer perceptron regressor trained with Adam (numpy only).

Backs the neural-network baselines of §V-C: PerfNet, PerfNetV2 and
Morphling (whose meta-model is an MLP fine-tuned on two reference
measurements of the unseen model). Supports multi-output regression,
ReLU hidden layers, L2 regularization, mini-batching and warm-started
fine-tuning (``partial_fit``) for the Morphling adaptation step.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MLPRegressor"]


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


class MLPRegressor:
    """Fully-connected regression network with ReLU activations."""

    def __init__(
        self,
        hidden_layers: tuple[int, ...] = (64, 64),
        learning_rate: float = 1e-3,
        n_epochs: int = 300,
        batch_size: int = 32,
        l2: float = 1e-5,
        random_state: int = 0,
    ) -> None:
        if not hidden_layers:
            raise ValueError("at least one hidden layer is required")
        if any(h < 1 for h in hidden_layers):
            raise ValueError("hidden layer sizes must be positive")
        self.hidden_layers = tuple(hidden_layers)
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.random_state = random_state
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self._adam_m: list[np.ndarray] = []
        self._adam_v: list[np.ndarray] = []
        self._adam_t = 0
        self.n_features_: int = 0
        self.n_outputs_: int = 0
        self.loss_curve_: list[float] = []

    # ---- initialization -----------------------------------------------------

    def _init_params(self, n_in: int, n_out: int) -> None:
        rng = np.random.default_rng(self.random_state)
        sizes = [n_in, *self.hidden_layers, n_out]
        self._weights = []
        self._biases = []
        for a, b in zip(sizes[:-1], sizes[1:]):
            # He initialization for ReLU networks.
            self._weights.append(rng.normal(0.0, np.sqrt(2.0 / a), size=(a, b)))
            self._biases.append(np.zeros(b))
        params = self._weights + self._biases
        self._adam_m = [np.zeros_like(p) for p in params]
        self._adam_v = [np.zeros_like(p) for p in params]
        self._adam_t = 0

    # ---- forward / backward ----------------------------------------------------

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [X]
        h = X
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            z = h @ W + b
            h = z if i == len(self._weights) - 1 else _relu(z)
            activations.append(h)
        return h, activations

    def _backward(
        self, activations: list[np.ndarray], grad_out: np.ndarray
    ) -> list[np.ndarray]:
        grads: list[np.ndarray] = [None] * (2 * len(self._weights))  # type: ignore[list-item]
        delta = grad_out
        for i in range(len(self._weights) - 1, -1, -1):
            a_prev = activations[i]
            grads[i] = a_prev.T @ delta + self.l2 * self._weights[i]
            grads[len(self._weights) + i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self._weights[i].T) * (activations[i] > 0)
        return grads

    def _adam_step(self, grads: list[np.ndarray]) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._adam_t += 1
        params = self._weights + self._biases
        for k, (p, g) in enumerate(zip(params, grads)):
            self._adam_m[k] = beta1 * self._adam_m[k] + (1 - beta1) * g
            self._adam_v[k] = beta2 * self._adam_v[k] + (1 - beta2) * g * g
            m_hat = self._adam_m[k] / (1 - beta1**self._adam_t)
            v_hat = self._adam_v[k] / (1 - beta2**self._adam_t)
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

    # ---- training ------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "MLPRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self.n_features_ = X.shape[1]
        self.n_outputs_ = y.shape[1]
        self._init_params(self.n_features_, self.n_outputs_)
        self.loss_curve_ = []
        return self.partial_fit(X, y, sample_weight, n_epochs=self.n_epochs)

    def partial_fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        n_epochs: int | None = None,
    ) -> "MLPRegressor":
        """Continue training from the current parameters (fine-tuning)."""
        if not self._weights:
            return self.fit(X, y, sample_weight)
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        w = (
            np.ones(len(y))
            if sample_weight is None
            else np.asarray(sample_weight, dtype=float)
        )
        w = w / w.mean()
        n_epochs = self.n_epochs if n_epochs is None else n_epochs
        rng = np.random.default_rng(self.random_state + 1)
        n = len(X)
        batch = min(self.batch_size, n)
        for _ in range(n_epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                sel = order[start : start + batch]
                out, acts = self._forward(X[sel])
                err = out - y[sel]
                werr = err * w[sel][:, None]
                epoch_loss += float(np.sum(werr * err))
                grad_out = 2.0 * werr / len(sel)
                self._adam_step(self._backward(acts, grad_out))
            self.loss_curve_.append(epoch_loss / n)
        return self

    # ---- inference ------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._weights:
            raise RuntimeError("model must be fit before predict")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(f"X must have shape (n, {self.n_features_})")
        out, _ = self._forward(X)
        return out[:, 0] if self.n_outputs_ == 1 else out
