"""Histogram-based regression trees with sample weights and per-feature
monotonicity constraints.

This is the tree engine under both the RandomForest baseline and the
gradient-boosting regressor (the paper's XGBoost stand-in). Features are
pre-binned to at most ``max_bins`` quantile bins; split search scans
per-bin weighted histograms. Monotone constraints follow the
LightGBM/XGBoost scheme: a split on a constrained feature is rejected
when the child means violate the direction, and child value bounds
propagate down the tree (mid-point clamping), which guarantees *global*
monotonicity of the fitted function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FeatureBinner", "DecisionTreeRegressor", "TreeNode"]

_EPS = 1e-12


def features_offsets(features: np.ndarray, max_bins: int) -> np.ndarray:
    """Row vector of flat-histogram offsets, one per scanned feature."""
    return (np.arange(len(features)) * max_bins)[None, :]


class FeatureBinner:
    """Quantile pre-binning of a feature matrix to small integer codes."""

    def __init__(self, max_bins: int = 64) -> None:
        if not 2 <= max_bins <= 255:
            raise ValueError(f"max_bins must be in [2, 255], got {max_bins}")
        self.max_bins = max_bins
        self.thresholds_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "FeatureBinner":
        X = np.asarray(X, dtype=float)
        thresholds = []
        for j in range(X.shape[1]):
            col = X[:, j]
            uniq = np.unique(col)
            if len(uniq) <= 1:
                thresholds.append(np.empty(0))
            elif len(uniq) <= self.max_bins:
                thresholds.append((uniq[:-1] + uniq[1:]) / 2.0)
            else:
                qs = np.quantile(col, np.linspace(0, 1, self.max_bins + 1)[1:-1])
                thresholds.append(np.unique(qs))
        self.thresholds_ = thresholds
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.thresholds_ is None:
            raise RuntimeError("FeatureBinner must be fit before transform")
        X = np.asarray(X, dtype=float)
        out = np.empty(X.shape, dtype=np.uint8)
        for j, thr in enumerate(self.thresholds_):
            out[:, j] = np.searchsorted(thr, X[:, j], side="right")
        return out

    def n_bins(self, j: int) -> int:
        if self.thresholds_ is None:
            raise RuntimeError("FeatureBinner must be fit first")
        return len(self.thresholds_[j]) + 1

    def threshold_value(self, j: int, bin_index: int) -> float:
        """Raw-value threshold corresponding to splitting after ``bin_index``."""
        return float(self.thresholds_[j][bin_index])


@dataclass
class TreeNode:
    """One node of a fitted tree (threshold splits on raw feature values)."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    gain: float = 0.0
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class _Workspace:
    """Shared split-search state for one tree fit."""

    codes: np.ndarray
    y: np.ndarray
    w: np.ndarray
    features: np.ndarray
    monotone: dict[int, int]
    binner: FeatureBinner
    rng: np.random.Generator
    importances: np.ndarray = field(default=None)  # type: ignore[assignment]
    n_bins: np.ndarray = field(default=None)  # type: ignore[assignment]
    directions: np.ndarray = field(default=None)  # type: ignore[assignment]


class DecisionTreeRegressor:
    """Weighted regression tree with optional monotone constraints.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf / min_child_weight:
        Minimum row count / weight mass per leaf.
    max_features:
        Number of features considered per split (``None`` = all); used by
        the random forest for decorrelation.
    monotone_constraints:
        Map of feature index to direction (+1 increasing, -1 decreasing).
    max_bins:
        Histogram resolution for split search.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 1,
        min_child_weight: float = 1e-6,
        max_features: int | None = None,
        monotone_constraints: dict[int, int] | None = None,
        max_bins: int = 64,
        random_state: int | np.random.Generator = 0,
    ) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_child_weight = min_child_weight
        self.max_features = max_features
        self.monotone_constraints = dict(monotone_constraints or {})
        for j, d in self.monotone_constraints.items():
            if d not in (-1, 1):
                raise ValueError(f"monotone direction must be +-1, got {d} for {j}")
        self.max_bins = max_bins
        self.random_state = random_state
        self.root_: TreeNode | None = None
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None
        self._binner: FeatureBinner | None = None

    # ---- fitting ------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        binner: FeatureBinner | None = None,
        codes: np.ndarray | None = None,
    ) -> "DecisionTreeRegressor":
        """Fit the tree. ``binner``/``codes`` can be shared across trees
        (the GBM pre-bins once for the whole ensemble)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        w = (
            np.ones(len(y))
            if sample_weight is None
            else np.asarray(sample_weight, dtype=float)
        )
        if np.any(w < 0):
            raise ValueError("sample weights must be non-negative")
        if w.sum() <= 0:
            raise ValueError("sample weights must not all be zero")

        self.n_features_ = X.shape[1]
        if binner is None:
            binner = FeatureBinner(max_bins=self.max_bins).fit(X)
            codes = binner.transform(X)
        elif codes is None:
            codes = binner.transform(X)
        self._binner = binner

        rng = (
            self.random_state
            if isinstance(self.random_state, np.random.Generator)
            else np.random.default_rng(self.random_state)
        )
        directions = np.zeros(self.n_features_, dtype=np.int64)
        for j, d in self.monotone_constraints.items():
            if not 0 <= j < self.n_features_:
                raise ValueError(f"monotone constraint on unknown feature {j}")
            directions[j] = d
        ws = _Workspace(
            codes=codes,
            y=y,
            w=w,
            features=np.arange(self.n_features_),
            monotone=self.monotone_constraints,
            binner=binner,
            rng=rng,
            importances=np.zeros(self.n_features_),
            n_bins=np.array([binner.n_bins(j) for j in range(self.n_features_)]),
            directions=directions,
        )
        idx = np.arange(len(y))
        self.root_ = self._grow(ws, idx, depth=0, lo=-np.inf, hi=np.inf)
        total = ws.importances.sum()
        self.feature_importances_ = (
            ws.importances / total if total > 0 else ws.importances
        )
        return self

    def _grow(
        self, ws: _Workspace, idx: np.ndarray, depth: int, lo: float, hi: float
    ) -> TreeNode:
        w = ws.w[idx]
        y = ws.y[idx]
        sw = w.sum()
        value = float(np.clip(np.dot(w, y) / (sw + _EPS), lo, hi))
        node = TreeNode(value=value, n_samples=len(idx))
        if (
            depth >= self.max_depth
            or len(idx) < 2 * self.min_samples_leaf
            or np.all(y == y[0])
        ):
            return node

        split = self._best_split(ws, idx, lo, hi)
        if split is None:
            return node
        feature, bin_thr, gain, left_mask, vl, vr = split
        ws.importances[feature] += gain

        node.feature = feature
        node.threshold = ws.binner.threshold_value(feature, bin_thr)
        node.gain = gain

        direction = ws.monotone.get(feature, 0)
        if direction == 0:
            l_lo, l_hi, r_lo, r_hi = lo, hi, lo, hi
        else:
            mid = 0.5 * (vl + vr)
            if direction > 0:
                l_lo, l_hi = lo, min(hi, mid)
                r_lo, r_hi = max(lo, mid), hi
            else:
                l_lo, l_hi = max(lo, mid), hi
                r_lo, r_hi = lo, min(hi, mid)

        left_idx = idx[left_mask]
        right_idx = idx[~left_mask]
        node.left = self._grow(ws, left_idx, depth + 1, l_lo, l_hi)
        node.right = self._grow(ws, right_idx, depth + 1, r_lo, r_hi)
        return node

    def _best_split(
        self, ws: _Workspace, idx: np.ndarray, lo: float, hi: float
    ):
        """Find the best (feature, bin) split via weighted histograms.

        All candidate features are scanned at once: per-feature bin codes
        are offset into a single flat index so one ``bincount`` builds
        every histogram, and the gain/validity logic runs on
        (feature, bin) matrices.
        """
        y = ws.y[idx]
        w = ws.w[idx]
        wy = w * y
        sw = w.sum()
        swy = wy.sum()
        n = len(idx)
        parent_score = swy * swy / (sw + _EPS)

        features = ws.features
        if self.max_features is not None and self.max_features < len(features):
            features = np.sort(
                ws.rng.choice(features, size=self.max_features, replace=False)
            )
        f = len(features)
        if f == 0:
            return None

        bins = ws.n_bins[features]
        max_bins = int(bins.max())
        if max_bins < 2:
            return None
        sub = ws.codes[idx][:, features].astype(np.int64)
        flat = (sub + features_offsets(features, max_bins)).ravel(order="F")
        size = f * max_bins
        hist_w = np.bincount(flat, weights=np.tile(w, f), minlength=size)
        hist_wy = np.bincount(flat, weights=np.tile(wy, f), minlength=size)
        hist_n = np.bincount(flat, minlength=size)
        hist_w = hist_w.reshape(f, max_bins)
        hist_wy = hist_wy.reshape(f, max_bins)
        hist_n = hist_n.reshape(f, max_bins)

        # Split after bin k: cumulative sums over k in [0, max_bins-2].
        cw = np.cumsum(hist_w, axis=1)[:, :-1]
        cwy = np.cumsum(hist_wy, axis=1)[:, :-1]
        cn = np.cumsum(hist_n, axis=1)[:, :-1]
        rw = sw - cw
        rwy = swy - cwy
        rn = n - cn

        ks = np.arange(max_bins - 1)
        valid = (
            (cn >= self.min_samples_leaf)
            & (rn >= self.min_samples_leaf)
            & (cw >= self.min_child_weight)
            & (rw >= self.min_child_weight)
            & (ks[None, :] < (bins - 1)[:, None])  # threshold must exist
        )
        vl = cwy / (cw + _EPS)
        vr = rwy / (rw + _EPS)
        directions = ws.directions[features][:, None]
        increasing = directions > 0
        decreasing = directions < 0
        valid &= ~(increasing & (vl > vr))
        valid &= ~(decreasing & (vl < vr))
        constrained = directions != 0
        # Both child values must be representable inside the node's bounds,
        # otherwise clipping would destroy the gain estimate.
        valid &= ~(constrained & (np.minimum(vl, vr) > hi))
        valid &= ~(constrained & (np.maximum(vl, vr) < lo))
        if not valid.any():
            return None

        gains = np.where(
            valid,
            cwy * cwy / (cw + _EPS) + rwy * rwy / (rw + _EPS) - parent_score,
            -np.inf,
        )
        fi, k = np.unravel_index(int(np.argmax(gains)), gains.shape)
        best_gain = float(gains[fi, k])
        if best_gain <= 1e-9:
            return None
        j = int(features[fi])
        left_mask = sub[:, fi] <= k
        return (
            j,
            int(k),
            best_gain,
            left_mask,
            float(np.clip(vl[fi, k], lo, hi)),
            float(np.clip(vr[fi, k], lo, hi)),
        )

    # ---- prediction ----------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("tree must be fit before predict")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(f"X must have shape (n, {self.n_features_})")
        out = np.empty(len(X))
        self._predict_into(self.root_, X, np.arange(len(X)), out)
        return out

    def _predict_into(
        self, node: TreeNode, X: np.ndarray, idx: np.ndarray, out: np.ndarray
    ) -> None:
        """Route rows ``idx`` through ``node``, writing leaf values."""
        if node.is_leaf:
            out[idx] = node.value
            return
        if idx.size == 0:
            return
        mask = X[idx, node.feature] <= node.threshold
        self._predict_into(node.left, X, idx[mask], out)
        self._predict_into(node.right, X, idx[~mask], out)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def _d(node: TreeNode | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        if self.root_ is None:
            raise RuntimeError("tree must be fit first")
        return _d(self.root_)

    def n_leaves(self) -> int:
        def _n(node: TreeNode | None) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return _n(node.left) + _n(node.right)

        if self.root_ is None:
            raise RuntimeError("tree must be fit first")
        return _n(self.root_)
