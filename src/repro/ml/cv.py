"""Cross-validation utilities: leave-one-group-out splits and grid search.

The paper tunes hyperparameters with a leave-one-LLM-out procedure
(§IV-B3): all rows of one LLM form the validation set, the rest train;
the configuration with the lowest average validation error across splits
wins. Groups here are LLM names.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["leave_one_group_out", "grid_iter", "GridSearch"]


def leave_one_group_out(
    groups: Sequence[object],
) -> Iterator[tuple[np.ndarray, np.ndarray, object]]:
    """Yield (train_idx, val_idx, held_out_group) for each distinct group."""
    groups_arr = np.asarray(groups, dtype=object)
    uniques = list(dict.fromkeys(groups_arr.tolist()))
    if len(uniques) < 2:
        raise ValueError("leave-one-group-out needs at least 2 groups")
    for g in uniques:
        val = np.nonzero(groups_arr == g)[0]
        train = np.nonzero(groups_arr != g)[0]
        yield train, val, g


def grid_iter(grid: Mapping[str, Sequence[object]]) -> Iterator[dict[str, object]]:
    """All combinations of a parameter grid, in deterministic order."""
    if not grid:
        yield {}
        return
    keys = list(grid)
    for combo in itertools.product(*(grid[k] for k in keys)):
        yield dict(zip(keys, combo))


class GridSearch:
    """Grid search scored by a user-supplied evaluation callable.

    ``evaluate(params, train_idx, val_idx) -> float`` returns a loss for
    one split; the mean across leave-one-group-out splits ranks the
    configurations (lower is better).
    """

    def __init__(
        self,
        grid: Mapping[str, Sequence[object]],
        evaluate: Callable[[dict[str, object], np.ndarray, np.ndarray], float],
    ) -> None:
        self.grid = dict(grid)
        self.evaluate = evaluate
        self.results_: list[tuple[dict[str, object], float]] = []
        self.best_params_: dict[str, object] | None = None
        self.best_score_: float = float("inf")

    def run(self, groups: Sequence[object]) -> dict[str, object]:
        """Run the search; returns the best parameter configuration."""
        splits = list(leave_one_group_out(groups))
        self.results_ = []
        self.best_params_ = None
        self.best_score_ = float("inf")
        for params in grid_iter(self.grid):
            scores = []
            for train_idx, val_idx, _ in splits:
                score = self.evaluate(params, train_idx, val_idx)
                if np.isfinite(score):
                    scores.append(score)
            mean_score = float(np.mean(scores)) if scores else float("inf")
            self.results_.append((params, mean_score))
            if mean_score < self.best_score_:
                self.best_score_ = mean_score
                self.best_params_ = params
        if self.best_params_ is None:
            raise RuntimeError("grid search produced no finite scores")
        return self.best_params_
