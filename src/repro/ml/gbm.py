"""Gradient-boosted regression trees — the paper's XGBoost stand-in.

Supports the features the paper's regressor relies on (§IV-B2/3):
sample weights, per-feature monotonicity constraints, learning rate,
row/column subsampling, histogram split finding with a configurable bin
count, and the hyperparameters tuned in §IV-B3 (number of boosted trees,
maximum depth, learning rate, subsampling rates, number of bins).

Squared-error boosting: each stage fits a weighted tree to the current
residuals. Because every stage tree individually satisfies the monotone
constraints and the prediction is a non-negatively-weighted sum, the
ensemble is globally monotone — the property Eq. (IV-B2) requires.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeRegressor, FeatureBinner

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Weighted, monotone-constrained gradient boosting for regression."""

    def __init__(
        self,
        n_estimators: int = 200,
        max_depth: int = 4,
        learning_rate: float = 0.1,
        subsample: float = 1.0,
        colsample: float = 1.0,
        min_samples_leaf: int = 1,
        min_child_weight: float = 1e-6,
        max_bins: int = 64,
        monotone_constraints: dict[int, int] | None = None,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if not 0.0 < colsample <= 1.0:
            raise ValueError("colsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.subsample = subsample
        self.colsample = colsample
        self.min_samples_leaf = min_samples_leaf
        self.min_child_weight = min_child_weight
        self.max_bins = max_bins
        self.monotone_constraints = dict(monotone_constraints or {})
        self.random_state = random_state
        self.base_prediction_: float = 0.0
        self.trees_: list[DecisionTreeRegressor] = []
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "GradientBoostingRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        w = (
            np.ones(len(y))
            if sample_weight is None
            else np.asarray(sample_weight, dtype=float)
        )
        if np.any(w < 0):
            raise ValueError("sample weights must be non-negative")
        if w.sum() <= 0:
            raise ValueError("sample weights must not all be zero")

        n, self.n_features_ = X.shape
        for j in self.monotone_constraints:
            if not 0 <= j < self.n_features_:
                raise ValueError(f"monotone constraint on unknown feature {j}")

        rng = np.random.default_rng(self.random_state)
        binner = FeatureBinner(max_bins=self.max_bins).fit(X)
        codes = binner.transform(X)

        self.base_prediction_ = float(np.dot(w, y) / w.sum())
        pred = np.full(n, self.base_prediction_)
        self.trees_ = []
        importances = np.zeros(self.n_features_)

        n_cols = max(1, int(round(self.colsample * self.n_features_)))
        n_rows = max(1, int(round(self.subsample * n)))

        for _ in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0:
                idx = rng.choice(n, size=n_rows, replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                min_child_weight=self.min_child_weight,
                max_features=n_cols if self.colsample < 1.0 else None,
                monotone_constraints=self.monotone_constraints,
                max_bins=self.max_bins,
                random_state=rng,
            )
            tree.fit(
                X[idx],
                residual[idx],
                sample_weight=w[idx],
                binner=binner,
                codes=codes[idx],
            )
            self.trees_.append(tree)
            importances += tree.feature_importances_
            pred += self.learning_rate * tree.predict(X)

        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("model must be fit before predict")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(f"X must have shape (n, {self.n_features_})")
        out = np.full(len(X), self.base_prediction_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(X)
        return out

    def staged_predict(self, X: np.ndarray, every: int = 1):
        """Yield predictions after each ``every`` boosting stages."""
        X = np.asarray(X, dtype=float)
        out = np.full(len(X), self.base_prediction_)
        for i, tree in enumerate(self.trees_):
            out = out + self.learning_rate * tree.predict(X)
            if (i + 1) % every == 0:
                yield out.copy()
