"""From-scratch ML stack (numpy only): histogram trees, random forest with
MDI importances, monotone-constrained gradient boosting (XGBoost stand-in),
MLP with Adam, matrix-factorization collaborative filtering, metrics and CV."""

from repro.ml.tree import DecisionTreeRegressor, FeatureBinner, TreeNode
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.mlp import MLPRegressor
from repro.ml.cf import MatrixFactorization
from repro.ml.preprocessing import OneHotEncoder, StandardScaler
from repro.ml.metrics import mae, rmse, r2_score, mape, weighted_mape
from repro.ml.cv import leave_one_group_out, grid_iter, GridSearch
from repro.ml.serialize import (
    tree_to_dict,
    tree_from_dict,
    gbm_to_dict,
    gbm_from_dict,
    save_gbm,
    load_gbm,
)

__all__ = [
    "DecisionTreeRegressor",
    "FeatureBinner",
    "TreeNode",
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "MLPRegressor",
    "MatrixFactorization",
    "OneHotEncoder",
    "StandardScaler",
    "mae",
    "rmse",
    "r2_score",
    "mape",
    "weighted_mape",
    "leave_one_group_out",
    "grid_iter",
    "GridSearch",
    "tree_to_dict",
    "tree_from_dict",
    "gbm_to_dict",
    "gbm_from_dict",
    "save_gbm",
    "load_gbm",
]
