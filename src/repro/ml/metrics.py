"""Regression metrics, including the paper's weighted MAPE (§IV-B3)."""

from __future__ import annotations

import numpy as np

__all__ = ["mae", "rmse", "r2_score", "mape", "weighted_mape"]


def _check(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty inputs")
    return y_true, y_pred


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination (1 - SS_res / SS_tot)."""
    y_true, y_pred = _check(y_true, y_pred)
    ss_res = np.sum((y_true - y_pred) ** 2)
    ss_tot = np.sum((y_true - y_true.mean()) ** 2)
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return float(1.0 - ss_res / ss_tot)


def mape(y_true: np.ndarray, y_pred: np.ndarray, eps: float = 1e-12) -> float:
    """Mean absolute percentage error (fraction, not percent)."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred) / np.maximum(np.abs(y_true), eps)))


def weighted_mape(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    sample_weight: np.ndarray,
    eps: float = 1e-12,
) -> float:
    """Sample-weighted MAPE — the paper's HP-tuning objective (§IV-B3).

    Measures error relative to the latency values (which span orders of
    magnitude) while emphasizing the points near the latency constraints
    via the Eq. (4) sample weights.
    """
    y_true, y_pred = _check(y_true, y_pred)
    w = np.asarray(sample_weight, dtype=float)
    if w.shape != y_true.shape:
        raise ValueError("sample_weight shape mismatch")
    if np.any(w < 0):
        raise ValueError("sample weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("sample weights must not all be zero")
    rel = np.abs(y_true - y_pred) / np.maximum(np.abs(y_true), eps)
    return float(np.dot(w, rel) / total)
