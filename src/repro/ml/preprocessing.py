"""Feature preprocessing: one-hot encoding and standardization.

Minimal, numpy-only equivalents of the sklearn transformers the paper's
pipelines use (categorical LLM/GPU identity features need one-hot
encoding for the neural baselines; the MLPs want standardized inputs).
"""

from __future__ import annotations

import numpy as np

__all__ = ["OneHotEncoder", "StandardScaler"]


class OneHotEncoder:
    """One-hot encoding of string/object categorical columns.

    Unknown categories at transform time map to the all-zeros vector
    (``handle_unknown='ignore'`` semantics), which is exactly what the
    recommendation tool needs for *unseen* LLM types.
    """

    def __init__(self) -> None:
        self.categories_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "OneHotEncoder":
        X = np.asarray(X, dtype=object)
        if X.ndim == 1:
            X = X[:, None]
        self.categories_ = [np.unique(X[:, j].astype(str)) for j in range(X.shape[1])]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder must be fit before transform")
        X = np.asarray(X, dtype=object)
        if X.ndim == 1:
            X = X[:, None]
        if X.shape[1] != len(self.categories_):
            raise ValueError(
                f"expected {len(self.categories_)} columns, got {X.shape[1]}"
            )
        blocks = []
        for j, cats in enumerate(self.categories_):
            col = X[:, j].astype(str)
            block = np.zeros((len(col), len(cats)))
            idx = np.searchsorted(cats, col)
            idx_clipped = np.clip(idx, 0, len(cats) - 1)
            known = cats[idx_clipped] == col
            block[np.nonzero(known)[0], idx_clipped[known]] = 1.0
            blocks.append(block)
        return np.hstack(blocks) if blocks else np.empty((len(X), 0))

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def feature_names(self, input_names: list[str]) -> list[str]:
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder must be fit first")
        names = []
        for name, cats in zip(input_names, self.categories_):
            names.extend(f"{name}={c}" for c in cats)
        return names


class StandardScaler:
    """Column-wise standardization to zero mean / unit variance."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fit before transform")
        return (np.asarray(X, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fit before inverse_transform")
        return np.asarray(X, dtype=float) * self.scale_ + self.mean_
