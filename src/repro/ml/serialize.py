"""JSON serialization for the tree-based models.

The characterization dataset is produced offline and the recommendation
tool runs online (paper Fig 5), so the trained performance model must be
persistable. Trees serialize to plain JSON (no pickle): portable across
Python versions and safe to load from untrusted storage.
"""

from __future__ import annotations

import json

import numpy as np

from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.tree import DecisionTreeRegressor, TreeNode

__all__ = [
    "tree_to_dict",
    "tree_from_dict",
    "gbm_to_dict",
    "gbm_from_dict",
    "save_gbm",
    "load_gbm",
]

_FORMAT_VERSION = 1


def _node_to_dict(node: TreeNode) -> dict:
    if node.is_leaf:
        return {"value": node.value, "n": node.n_samples}
    return {
        "value": node.value,
        "n": node.n_samples,
        "feature": node.feature,
        "threshold": node.threshold,
        "gain": node.gain,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(data: dict) -> TreeNode:
    node = TreeNode(value=float(data["value"]), n_samples=int(data.get("n", 0)))
    if "feature" in data:
        node.feature = int(data["feature"])
        node.threshold = float(data["threshold"])
        node.gain = float(data.get("gain", 0.0))
        node.left = _node_from_dict(data["left"])
        node.right = _node_from_dict(data["right"])
    return node


def tree_to_dict(tree: DecisionTreeRegressor) -> dict:
    """Serializable description of a fitted tree (structure only)."""
    if tree.root_ is None:
        raise ValueError("tree must be fit before serialization")
    return {
        "n_features": tree.n_features_,
        "root": _node_to_dict(tree.root_),
        "importances": (
            tree.feature_importances_.tolist()
            if tree.feature_importances_ is not None
            else None
        ),
    }


def tree_from_dict(data: dict) -> DecisionTreeRegressor:
    """Reconstruct a prediction-ready tree from :func:`tree_to_dict`."""
    tree = DecisionTreeRegressor()
    tree.n_features_ = int(data["n_features"])
    tree.root_ = _node_from_dict(data["root"])
    if data.get("importances") is not None:
        tree.feature_importances_ = np.array(data["importances"])
    return tree


def gbm_to_dict(model: GradientBoostingRegressor) -> dict:
    """Serializable description of a fitted gradient-boosting model."""
    if not model.trees_:
        raise ValueError("model must be fit before serialization")
    return {
        "format_version": _FORMAT_VERSION,
        "kind": "gradient_boosting_regressor",
        "n_features": model.n_features_,
        "base_prediction": model.base_prediction_,
        "learning_rate": model.learning_rate,
        "monotone_constraints": {
            str(k): v for k, v in model.monotone_constraints.items()
        },
        "trees": [tree_to_dict(t) for t in model.trees_],
        "importances": (
            model.feature_importances_.tolist()
            if model.feature_importances_ is not None
            else None
        ),
    }


def gbm_from_dict(data: dict) -> GradientBoostingRegressor:
    """Reconstruct a prediction-ready GBM from :func:`gbm_to_dict`."""
    if data.get("kind") != "gradient_boosting_regressor":
        raise ValueError(f"not a serialized GBM: kind={data.get('kind')!r}")
    if data.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {data.get('format_version')!r}"
        )
    model = GradientBoostingRegressor(
        learning_rate=float(data["learning_rate"]),
        monotone_constraints={
            int(k): int(v) for k, v in data.get("monotone_constraints", {}).items()
        },
    )
    model.n_features_ = int(data["n_features"])
    model.base_prediction_ = float(data["base_prediction"])
    model.trees_ = [tree_from_dict(t) for t in data["trees"]]
    if data.get("importances") is not None:
        model.feature_importances_ = np.array(data["importances"])
    return model


def save_gbm(model: GradientBoostingRegressor, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(gbm_to_dict(model), fh)


def load_gbm(path: str) -> GradientBoostingRegressor:
    with open(path) as fh:
        return gbm_from_dict(json.load(fh))
