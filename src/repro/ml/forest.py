"""Random-forest regressor with MDI feature importances.

Used in three places in the paper: the §III-A trace-latency importance
study (R^2 ~ 0.93, MDI ranking), the Fig 4 deployment-knob study, and
the RF / PARIS recommendation baselines (§V-C).
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeRegressor, FeatureBinner

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bagged ensemble of histogram regression trees.

    ``max_features`` follows sklearn semantics: ``None`` (all features,
    the modern sklearn regression default — decorrelation comes from
    bagging alone), an int, or a float fraction.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features: int | float | None = None,
        bootstrap: bool = True,
        max_bins: int = 64,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.max_bins = max_bins
        self.random_state = random_state
        self.trees_: list[DecisionTreeRegressor] = []
        self.feature_importances_: np.ndarray | None = None
        self.n_features_: int = 0

    def _resolve_max_features(self, n_features: int) -> int | None:
        mf = self.max_features
        if mf is None:
            return None
        if isinstance(mf, float):
            return max(1, int(round(mf * n_features)))
        return max(1, min(int(mf), n_features))

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        w = (
            np.ones(len(y))
            if sample_weight is None
            else np.asarray(sample_weight, dtype=float)
        )
        self.n_features_ = X.shape[1]
        n = len(y)
        rng = np.random.default_rng(self.random_state)
        binner = FeatureBinner(max_bins=self.max_bins).fit(X)
        codes = binner.transform(X)
        mf = self._resolve_max_features(self.n_features_)

        self.trees_ = []
        importances = np.zeros(self.n_features_)
        for _ in range(self.n_estimators):
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=mf,
                max_bins=self.max_bins,
                random_state=rng,
            )
            tree.fit(
                X[idx], y[idx], sample_weight=w[idx], binner=binner, codes=codes[idx]
            )
            self.trees_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest must be fit before predict")
        X = np.asarray(X, dtype=float)
        out = np.zeros(len(X))
        for tree in self.trees_:
            out += tree.predict(X)
        return out / len(self.trees_)
