"""Multi-tenant cluster scheduling (the paper's declared next step).

The paper's conclusion: "we intend to extend LLM-Pilot to cover the
multi-tenancy scenario, in which multiple users compete to deploy LLM
inference services on the same hardware resources." This module
implements that extension over the reproduction's machinery:

* a :class:`ClusterInventory` of finite per-GPU-type capacity (the
  clock-aware ledger from :mod:`repro.simulation.cluster`, used here as
  static packing state);
* placement of each tenant's *ranked* deployment options (as produced
  by the recommendation tool's per-profile assessments) under capacity
  constraints;
* two policies — greedy-by-cost and a global best-fit that minimizes
  total cluster cost while serving every tenant it can;
* a bridge from the static answer to the dynamic one:
  :meth:`ScheduleResult.to_cluster_sim` turns the placements into the
  initial tenant allocations of a shared-clock
  :class:`~repro.simulation.cluster.ClusterSimulator`.

Pods keep exclusive GPU access (no co-location, matching §II-C), so
multi-tenancy is a packing problem over GPU counts.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.hardware.pricing import CloudCatalog, PricingTable
from repro.hardware.profile import parse_profile
from repro.recommendation.recommender import ProfileAssessment, Recommendation
from repro.simulation.autoscale import Autoscaler
from repro.simulation.cloud import BurstPolicy, CloudLedger
from repro.simulation.cluster import (
    ClusterInventory,
    ClusterResult,
    ClusterSimulator,
)
from repro.utils.parallel import fork_map

if TYPE_CHECKING:
    from repro.cluster.deployment import Deployment
    from repro.simulation.fleet import Router
    from repro.simulation.traffic import TrafficModel

__all__ = [
    "ClusterInventory",
    "TenantRequest",
    "Placement",
    "ScheduleResult",
    "MultiTenantScheduler",
    "FeedbackIteration",
    "FeedbackOutcome",
    "FeedbackScheduler",
]


@dataclass(frozen=True)
class TenantRequest:
    """One tenant's deployment request: the ranked feasible options.

    ``options`` come straight from ``Recommendation.assessments`` —
    every profile with a positive umax, with pod counts and costs
    already derived from the tenant's SLA and user count.
    """

    tenant: str
    options: tuple[ProfileAssessment, ...]

    @classmethod
    def from_recommendation(cls, tenant: str, rec: Recommendation) -> "TenantRequest":
        usable = tuple(
            sorted(
                (a for a in rec.assessments if a.umax >= 1),
                key=lambda a: (a.total_cost, a.n_pods),
            )
        )
        return cls(tenant=tenant, options=usable)


@dataclass(frozen=True)
class Placement:
    tenant: str
    profile: str
    n_pods: int
    total_cost: float


@dataclass
class ScheduleResult:
    placements: list[Placement] = field(default_factory=list)
    unplaced: list[str] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return sum(p.total_cost for p in self.placements)

    @property
    def n_placed(self) -> int:
        return len(self.placements)

    def to_cluster_sim(
        self,
        deployments: dict[str, "Deployment"],
        traffics: dict[str, "TrafficModel"],
        capacity: dict[str, int],
        routers: dict[str, "Router"] | None = None,
        autoscalers: dict[str, "Autoscaler"] | None = None,
        slos: dict[str, float] | None = None,
        cloud: CloudLedger | None = None,
        burst: BurstPolicy | dict[str, BurstPolicy] | None = None,
    ) -> ClusterSimulator:
        """Turn the static packing answer into a shared-clock co-simulation.

        Each placement becomes a tenant's initial allocation: the
        tenant's :class:`~repro.cluster.deployment.Deployment` template
        (which carries its LLM, workload generator and seed) is
        reconfigured to the *scheduled* profile and pod count — with the
        max batch weight re-tuned when the scheduler picked a different
        profile than the template's — and embedded as a
        :class:`~repro.simulation.cluster.TenantGroup` drawing from a
        fresh :class:`~repro.simulation.cluster.ClusterInventory` of
        ``capacity``. Per-tenant traffic is required; routers (possibly
        admission controllers), autoscalers and reporting SLOs are
        optional. With ``cloud`` (and optionally ``burst``) set, the
        cluster gets the elastic capacity tier: scale-ups the on-prem
        inventory denies or clips overflow into the rented ledger; a
        per-tenant ``burst`` dict is filtered to the tenants actually
        placed (the simulator rejects unknown names, and unplaced
        tenants cannot burst). Unplaced tenants are simply absent from
        the cluster, exactly as the scheduler left them.
        """
        routers = routers or {}
        autoscalers = autoscalers or {}
        slos = slos or {}
        if isinstance(burst, dict):
            placed = {p.tenant for p in self.placements}
            burst = {t: b for t, b in burst.items() if t in placed} or None
        groups = []
        for placement in self.placements:
            template = deployments[placement.tenant]
            scheduled = template.reconfigure(
                profile=parse_profile(placement.profile),
                n_pods=placement.n_pods,
            )
            groups.append(
                scheduled.tenant_group(
                    placement.tenant,
                    traffics[placement.tenant],
                    router=routers.get(placement.tenant),
                    autoscaler=autoscalers.get(placement.tenant),
                    slo_p95_ttft_s=slos.get(placement.tenant),
                )
            )
        return ClusterSimulator(
            groups,
            ClusterInventory(capacity=dict(capacity)),
            cloud=cloud,
            burst=burst,
        )


class MultiTenantScheduler:
    """Places competing tenants onto a finite GPU inventory."""

    def __init__(self, inventory: ClusterInventory) -> None:
        self.inventory = inventory

    # ---- policies -----------------------------------------------------------

    def schedule_greedy(self, tenants: list[TenantRequest]) -> ScheduleResult:
        """First-come-first-served: each tenant takes its cheapest option
        that still fits the remaining inventory."""
        result = ScheduleResult()
        for tenant in tenants:
            placed = False
            for option in tenant.options:
                if self.inventory.can_fit(option.profile, option.n_pods):
                    self.inventory.allocate(option.profile, option.n_pods)
                    result.placements.append(
                        Placement(
                            tenant=tenant.tenant,
                            profile=option.profile,
                            n_pods=option.n_pods,
                            total_cost=option.total_cost,
                        )
                    )
                    placed = True
                    break
            if not placed:
                result.unplaced.append(tenant.tenant)
        return result

    def schedule_best_fit(self, tenants: list[TenantRequest]) -> ScheduleResult:
        """Global policy: maximize placed tenants, then minimize total cost.

        Exact search over per-tenant options with branch-and-bound; the
        paper-scale problem (tens of tenants, <=14 options each) is far
        within reach because options per tenant are few and dominated
        branches prune aggressively.
        """
        tenants = list(tenants)
        best: tuple[int, float, list[Placement]] = (0, float("inf"), [])

        def dfs(i: int, placements: list[Placement], cost: float) -> None:
            nonlocal best
            placed_now = len(placements)
            remaining = len(tenants) - i
            # Bound: even placing everyone left cannot beat the best.
            if (placed_now + remaining, -cost) < (best[0], -best[1]) and (
                placed_now + remaining < best[0]
                or (placed_now + remaining == best[0] and cost >= best[1])
            ):
                return
            if i == len(tenants):
                if placed_now > best[0] or (placed_now == best[0] and cost < best[1]):
                    best = (placed_now, cost, list(placements))
                return
            tenant = tenants[i]
            # Option branches (cheapest first), then the skip branch.
            for option in tenant.options:
                if not self.inventory.can_fit(option.profile, option.n_pods):
                    continue
                self.inventory.allocate(option.profile, option.n_pods)
                placements.append(
                    Placement(
                        tenant=tenant.tenant,
                        profile=option.profile,
                        n_pods=option.n_pods,
                        total_cost=option.total_cost,
                    )
                )
                dfs(i + 1, placements, cost + option.total_cost)
                placements.pop()
                self.inventory.release(option.profile, option.n_pods)
            dfs(i + 1, placements, cost)

        dfs(0, [], 0.0)
        placed_tenants = {p.tenant for p in best[2]}
        result = ScheduleResult(
            placements=best[2],
            unplaced=[t.tenant for t in tenants if t.tenant not in placed_tenants],
        )
        # Commit the chosen allocation to the inventory.
        for p in result.placements:
            self.inventory.allocate(p.profile, p.n_pods)
        return result


@dataclass
class FeedbackIteration:
    """One pass of the schedule -> co-simulate -> adjust loop."""

    placements: list[Placement]
    result: ClusterResult
    contended: dict[str, int]
    adjustments: dict[str, str] = field(default_factory=dict)

    @property
    def contended_total(self) -> int:
        return sum(self.contended.values())

    @property
    def contended_rate_per_min(self) -> float:
        """Denied + clipped scale-ups per minute of simulated time."""
        return self.contended_total / (self.result.duration_s / 60.0)


@dataclass
class FeedbackOutcome:
    """The loop's trajectory: every iteration, oldest first."""

    iterations: list[FeedbackIteration]
    converged: bool

    @property
    def final(self) -> ClusterResult:
        return self.iterations[-1].result

    @property
    def placements(self) -> list[Placement]:
        return self.iterations[-1].placements

    def contended_totals(self) -> list[int]:
        return [it.contended_total for it in self.iterations]

    def contended_rates(self) -> list[float]:
        return [it.contended_rate_per_min for it in self.iterations]


class FeedbackScheduler:
    """Feeds co-simulation contention back into placement.

    The static scheduler packs tenants by their Eq. (2) pod counts, but
    the co-simulation shows what the packing *does* under real traffic:
    some tenants' scale-ups keep getting denied or clipped by the
    shared inventory (:class:`~repro.simulation.fleet.ScaleEvent`
    constraints). This loop schedules, co-simulates, and then adjusts
    the tenants the inventory keeps rejecting:

    * **right-size** — raise the tenant's *initial* allocation and its
      autoscaler's ``min_pods`` floor to the peak pod count the ledger
      actually granted it during the run (pre-reserving capacity it
      otherwise fights for mid-run — the floor keeps the reservation
      from being released at the first trough), and cap its autoscaler's
      ``max_pods`` at that reservation plus its share of the remaining
      slack, so it stops asking for pods that cannot exist;
    * **re-schedule** — when the tenant's GPU type has no slack left at
      all, move it to its next ranked profile option (from its
      :class:`TenantRequest`) on a GPU type that still has stock.

    Iteration stops once a co-simulation records no denied/clipped
    events (``converged``), no further adjustment is possible, or
    ``max_iterations`` is reached. Traffic is supplied as factories —
    each iteration replays a fresh, identically seeded arrival process,
    so the trajectory is deterministic and iterations are comparable.

    With ``cloud`` set, every co-simulation runs with the elastic
    capacity tier (a fresh :class:`~repro.simulation.cloud.CloudLedger`
    per iteration keeps iterations comparable), and the adjustment step
    gains a third move:

    * **burst-to-cloud** — a contended tenant that nevertheless met its
      SLO, on hardware the catalog rents at or below the on-prem rate
      (``pricing`` must be supplied for the comparison), keeps its
      reservation: renting its overflow is no more expensive than
      pre-reserving owned capacity, and the owned slack stays free for
      tenants the cloud cannot help. When *every* adjustment of a pass
      is burst-to-cloud nothing material changed, so the loop stops
      instead of re-simulating an identical cluster.
    """

    def __init__(
        self,
        capacity: dict[str, int],
        duration_s: float,
        warmup_s: float = 0.0,
        max_iterations: int = 4,
        cloud: CloudCatalog | None = None,
        burst: BurstPolicy | None = None,
        pricing: PricingTable | None = None,
        cloud_seed: int = 0,
    ) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if burst is not None and cloud is None:
            raise ValueError(
                "a burst policy without a cloud catalog has nothing to "
                "rent from; pass cloud= alongside burst="
            )
        self.capacity = dict(capacity)
        self.duration_s = float(duration_s)
        self.warmup_s = float(warmup_s)
        self.max_iterations = int(max_iterations)
        self.cloud = cloud
        self.burst = (
            burst if burst is not None or cloud is None else BurstPolicy()
        )
        self.pricing = pricing
        self.cloud_seed = int(cloud_seed)

    def run(
        self,
        requests: list[TenantRequest],
        deployments: dict[str, "Deployment"],
        traffic_factories: dict[str, Callable[[], "TrafficModel"]],
        routers: dict[str, "Router"] | None = None,
        autoscalers: dict[str, Autoscaler] | None = None,
        slos: dict[str, float] | None = None,
    ) -> FeedbackOutcome:
        """Iterate schedule -> co-simulate -> adjust until stable."""
        scheduler = MultiTenantScheduler(
            ClusterInventory(capacity=dict(self.capacity))
        )
        schedule = scheduler.schedule_best_fit(requests)
        placements = list(schedule.placements)
        unplaced = list(schedule.unplaced)
        autoscalers = dict(autoscalers or {})
        options = {r.tenant: r.options for r in requests}
        iterations: list[FeedbackIteration] = []
        converged = False
        while True:
            result = self._simulate(
                placements,
                unplaced,
                deployments,
                traffic_factories,
                routers,
                autoscalers,
                slos,
            )
            contended = result.contended_counts()
            iterations.append(
                FeedbackIteration(
                    placements=list(placements),
                    result=result,
                    contended=contended,
                )
            )
            if sum(contended.values()) == 0:
                converged = True
                break
            if len(iterations) >= self.max_iterations:
                break
            placements, autoscalers, adjustments = self._adjust(
                placements, result, autoscalers, options
            )
            if not adjustments:
                break
            iterations[-1].adjustments = adjustments
            if all(a.startswith("burst-to-cloud") for a in adjustments.values()):
                # Nothing material changed: every contended tenant keeps
                # its reservation and rents overflow instead. The next
                # co-simulation would be identical — stop here.
                break
        return FeedbackOutcome(iterations=iterations, converged=converged)

    def sweep_capacities(
        self,
        capacities: Sequence[dict[str, int]],
        requests: list[TenantRequest],
        deployments: dict[str, "Deployment"],
        traffic_factories: dict[str, Callable[[], "TrafficModel"]],
        routers: dict[str, "Router"] | None = None,
        autoscalers: dict[str, Autoscaler] | None = None,
        slos: dict[str, float] | None = None,
        jobs: int = 1,
    ) -> list[FeedbackOutcome]:
        """Run the full feedback loop once per candidate capacity map.

        The *iterations* of one loop are inherently sequential (each
        re-schedules from the previous co-simulation), but candidate
        capacities are embarrassingly parallel: every candidate replays
        identically seeded traffic against its own inventory, sharing no
        state with its neighbors. ``jobs > 1`` fans the candidates
        across worker processes via
        :func:`~repro.utils.parallel.fork_map`; outcomes come back
        ordered by candidate index and byte-identical to the serial
        sweep. ``self.capacity`` is ignored; each candidate supplies its
        own.
        """

        def run_one(capacity: dict[str, int]) -> FeedbackOutcome:
            scheduler = FeedbackScheduler(
                capacity,
                duration_s=self.duration_s,
                warmup_s=self.warmup_s,
                max_iterations=self.max_iterations,
                cloud=self.cloud,
                burst=self.burst,
                pricing=self.pricing,
                cloud_seed=self.cloud_seed,
            )
            return scheduler.run(
                requests,
                deployments,
                traffic_factories,
                routers=routers,
                autoscalers=autoscalers,
                slos=slos,
            )

        return fork_map(run_one, capacities, jobs)

    # ---- internals --------------------------------------------------------

    def _simulate(
        self,
        placements,
        unplaced,
        deployments,
        traffic_factories,
        routers,
        autoscalers,
        slos,
    ) -> ClusterResult:
        traffics = {p.tenant: traffic_factories[p.tenant]() for p in placements}
        ledger = (
            None
            if self.cloud is None
            else CloudLedger(self.cloud, seed=self.cloud_seed)
        )
        sim = ScheduleResult(
            placements=list(placements), unplaced=list(unplaced)
        ).to_cluster_sim(
            deployments,
            traffics,
            capacity=self.capacity,
            routers=routers,
            autoscalers=autoscalers,
            slos=slos,
            cloud=ledger,
            burst=self.burst if ledger is not None else None,
        )
        result = sim.run(self.duration_s, warmup_s=self.warmup_s)
        result.verify_conservation()
        return result

    def _adjust(
        self,
        placements: list[Placement],
        result: ClusterResult,
        autoscalers: dict[str, Autoscaler],
        options: dict[str, tuple[ProfileAssessment, ...]],
    ) -> tuple[list[Placement], dict[str, Autoscaler], dict[str, str]]:
        """Right-size or re-schedule the tenants the inventory rejected."""
        peak = result.peak_pods()
        contended = {t: n for t, n in result.contended_counts().items() if n > 0}
        by_tenant = {p.tenant: p for p in placements}
        inventory = ClusterInventory(capacity=dict(self.capacity))
        for p in placements:
            inventory.allocate(p.profile, p.n_pods)
        adjustments: dict[str, str] = {}
        autoscalers = dict(autoscalers)
        bursting: set[str] = set()
        # Most-rejected tenants claim slack first (ties: tenant order).
        order = sorted(contended, key=lambda t: -contended[t])
        for tenant in order:
            p = by_tenant[tenant]
            # Burst instead of right-size: a tenant still meeting its SLO
            # on hardware the cloud rents at or below the on-prem rate
            # keeps its reservation — renting the overflow costs no more
            # than pre-reserving it, and the owned slack stays free for
            # tenants the cloud cannot help.
            if (
                self.cloud is not None
                and self.pricing is not None
                and self.burst is not None
                and result.meets_slo(tenant) is not False
            ):
                profile = parse_profile(p.profile)
                if self.cloud.offers(profile.gpu.name):
                    cloud_rate = self.cloud.pod_cost(profile, self.burst.mode)
                    on_prem_rate = self.pricing.pod_cost(profile)
                    if (
                        cloud_rate <= on_prem_rate
                        and self.burst.burst_pods(1, 0, cloud_rate) > 0
                    ):
                        bursting.add(tenant)
                        adjustments[tenant] = (
                            f"burst-to-cloud: kept {p.n_pods}-pod "
                            f"reservation, overflow rents at "
                            f"${cloud_rate:.2f}/h <= ${on_prem_rate:.2f}/h "
                            f"on-prem"
                        )
                        continue
            target = max(p.n_pods, peak.get(tenant, 0))
            extra = min(target - p.n_pods, inventory.fillable_pods(p.profile))
            if extra > 0:
                inventory.allocate(p.profile, extra)
                reserved = p.n_pods + extra
                by_tenant[tenant] = Placement(
                    tenant=tenant,
                    profile=p.profile,
                    n_pods=reserved,
                    total_cost=p.total_cost / p.n_pods * reserved,
                )
                # Make the reservation *hold*: raising only the initial
                # allocation would hand the pods straight back to the
                # ledger at the first scale-down, where a neighbor grabs
                # them — so the tenant's autoscaler floor rises with it.
                scaler = autoscalers.get(tenant)
                if scaler is not None:
                    autoscalers[tenant] = Autoscaler(
                        scaler.policy,
                        replace(
                            scaler.config,
                            min_pods=reserved,
                            max_pods=max(scaler.config.max_pods, reserved),
                        ),
                    )
                adjustments[tenant] = f"right-sized {p.n_pods} -> {reserved}"
            elif inventory.fillable_pods(p.profile) == 0 and target > p.n_pods:
                moved = self._reschedule(tenant, p, inventory, options)
                if moved is not None:
                    by_tenant[tenant] = moved
                    adjustments[tenant] = (
                        f"re-scheduled {p.profile} -> {moved.profile}"
                    )
        # Cap every rejected tenant's ask at its reservation plus a fair
        # share of what is left — asks beyond that can never be granted.
        # Bursting tenants are exempt: their overflow *is* grantable,
        # from the cloud.
        for tenant in order:
            if tenant in bursting:
                continue
            scaler = autoscalers.get(tenant)
            if scaler is None:
                continue
            reserved = by_tenant[tenant].n_pods
            slack = inventory.fillable_pods(by_tenant[tenant].profile)
            cap = max(1, reserved + slack // len(order))
            if cap < scaler.config.max_pods:
                autoscalers[tenant] = Autoscaler(
                    scaler.policy,
                    replace(
                        scaler.config,
                        max_pods=cap,
                        min_pods=min(scaler.config.min_pods, cap),
                    ),
                )
                adjustments[tenant] = (
                    adjustments.get(tenant, "").rstrip()
                    + f" capped max_pods at {cap}"
                ).strip()
        return (
            [by_tenant[p.tenant] for p in placements],
            autoscalers,
            adjustments,
        )

    def _reschedule(
        self, tenant, placement, inventory, options
    ) -> Placement | None:
        """Move a starved tenant to its next option with free stock.

        The move is sized by the option's *own* pod count (the observed
        peak is measured in pods of the old profile and means nothing on
        hardware with a different per-pod GPU count and throughput).
        The old allocation stays put until a fit is found: same-GPU
        options are skipped, so releasing it early could not free
        anything the candidate check reads.
        """
        current_gpu = parse_profile(placement.profile).gpu.name
        for option in options.get(tenant, ()):
            gpu = parse_profile(option.profile).gpu.name
            if gpu == current_gpu:
                continue
            if inventory.fillable_pods(option.profile) >= option.n_pods:
                inventory.release(placement.profile, placement.n_pods)
                inventory.allocate(option.profile, option.n_pods)
                return Placement(
                    tenant=tenant,
                    profile=option.profile,
                    n_pods=option.n_pods,
                    total_cost=option.total_cost,
                )
        return None
