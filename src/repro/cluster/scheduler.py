"""Multi-tenant cluster scheduling (the paper's declared next step).

The paper's conclusion: "we intend to extend LLM-Pilot to cover the
multi-tenancy scenario, in which multiple users compete to deploy LLM
inference services on the same hardware resources." This module
implements that extension over the reproduction's machinery:

* a :class:`ClusterInventory` of finite per-GPU-type capacity;
* placement of each tenant's *ranked* deployment options (as produced
  by the recommendation tool's per-profile assessments) under capacity
  constraints;
* two policies — greedy-by-cost and a global best-fit that minimizes
  total cluster cost while serving every tenant it can.

Pods keep exclusive GPU access (no co-location, matching §II-C), so
multi-tenancy is a packing problem over GPU counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.profile import parse_profile
from repro.recommendation.recommender import ProfileAssessment, Recommendation

__all__ = [
    "ClusterInventory",
    "TenantRequest",
    "Placement",
    "ScheduleResult",
    "MultiTenantScheduler",
]


@dataclass
class ClusterInventory:
    """Finite GPU inventory, by GPU type name."""

    capacity: dict[str, int]
    used: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, count in self.capacity.items():
            if count < 0:
                raise ValueError(f"negative capacity for {name}")
            self.used.setdefault(name, 0)

    def available(self, gpu_name: str) -> int:
        return self.capacity.get(gpu_name, 0) - self.used.get(gpu_name, 0)

    def can_fit(self, profile_name: str, pods: int) -> bool:
        profile = parse_profile(profile_name)
        return self.available(profile.gpu.name) >= profile.count * pods

    def allocate(self, profile_name: str, pods: int) -> None:
        profile = parse_profile(profile_name)
        need = profile.count * pods
        if self.available(profile.gpu.name) < need:
            raise ValueError(
                f"cannot allocate {need} x {profile.gpu.name}: only "
                f"{self.available(profile.gpu.name)} available"
            )
        self.used[profile.gpu.name] = self.used.get(profile.gpu.name, 0) + need

    def release(self, profile_name: str, pods: int) -> None:
        profile = parse_profile(profile_name)
        need = profile.count * pods
        if self.used.get(profile.gpu.name, 0) < need:
            raise ValueError("releasing more GPUs than allocated")
        self.used[profile.gpu.name] -= need

    def utilization(self) -> dict[str, float]:
        return {
            name: (self.used.get(name, 0) / cap if cap else 0.0)
            for name, cap in self.capacity.items()
        }


@dataclass(frozen=True)
class TenantRequest:
    """One tenant's deployment request: the ranked feasible options.

    ``options`` come straight from ``Recommendation.assessments`` —
    every profile with a positive umax, with pod counts and costs
    already derived from the tenant's SLA and user count.
    """

    tenant: str
    options: tuple[ProfileAssessment, ...]

    @classmethod
    def from_recommendation(cls, tenant: str, rec: Recommendation) -> "TenantRequest":
        usable = tuple(
            sorted(
                (a for a in rec.assessments if a.umax >= 1),
                key=lambda a: (a.total_cost, a.n_pods),
            )
        )
        return cls(tenant=tenant, options=usable)


@dataclass(frozen=True)
class Placement:
    tenant: str
    profile: str
    n_pods: int
    total_cost: float


@dataclass
class ScheduleResult:
    placements: list[Placement] = field(default_factory=list)
    unplaced: list[str] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return sum(p.total_cost for p in self.placements)

    @property
    def n_placed(self) -> int:
        return len(self.placements)


class MultiTenantScheduler:
    """Places competing tenants onto a finite GPU inventory."""

    def __init__(self, inventory: ClusterInventory) -> None:
        self.inventory = inventory

    # ---- policies -----------------------------------------------------------

    def schedule_greedy(self, tenants: list[TenantRequest]) -> ScheduleResult:
        """First-come-first-served: each tenant takes its cheapest option
        that still fits the remaining inventory."""
        result = ScheduleResult()
        for tenant in tenants:
            placed = False
            for option in tenant.options:
                if self.inventory.can_fit(option.profile, option.n_pods):
                    self.inventory.allocate(option.profile, option.n_pods)
                    result.placements.append(
                        Placement(
                            tenant=tenant.tenant,
                            profile=option.profile,
                            n_pods=option.n_pods,
                            total_cost=option.total_cost,
                        )
                    )
                    placed = True
                    break
            if not placed:
                result.unplaced.append(tenant.tenant)
        return result

    def schedule_best_fit(self, tenants: list[TenantRequest]) -> ScheduleResult:
        """Global policy: maximize placed tenants, then minimize total cost.

        Exact search over per-tenant options with branch-and-bound; the
        paper-scale problem (tens of tenants, <=14 options each) is far
        within reach because options per tenant are few and dominated
        branches prune aggressively.
        """
        tenants = list(tenants)
        best: tuple[int, float, list[Placement]] = (0, float("inf"), [])

        def dfs(i: int, placements: list[Placement], cost: float) -> None:
            nonlocal best
            placed_now = len(placements)
            remaining = len(tenants) - i
            # Bound: even placing everyone left cannot beat the best.
            if (placed_now + remaining, -cost) < (best[0], -best[1]) and (
                placed_now + remaining < best[0]
                or (placed_now + remaining == best[0] and cost >= best[1])
            ):
                return
            if i == len(tenants):
                if placed_now > best[0] or (placed_now == best[0] and cost < best[1]):
                    best = (placed_now, cost, list(placements))
                return
            tenant = tenants[i]
            # Option branches (cheapest first), then the skip branch.
            for option in tenant.options:
                if not self.inventory.can_fit(option.profile, option.n_pods):
                    continue
                self.inventory.allocate(option.profile, option.n_pods)
                placements.append(
                    Placement(
                        tenant=tenant.tenant,
                        profile=option.profile,
                        n_pods=option.n_pods,
                        total_cost=option.total_cost,
                    )
                )
                dfs(i + 1, placements, cost + option.total_cost)
                placements.pop()
                self.inventory.release(option.profile, option.n_pods)
            dfs(i + 1, placements, cost)

        dfs(0, [], 0.0)
        placed_tenants = {p.tenant for p in best[2]}
        result = ScheduleResult(
            placements=best[2],
            unplaced=[t.tenant for t in tenants if t.tenant not in placed_tenants],
        )
        # Commit the chosen allocation to the inventory.
        for p in result.placements:
            self.inventory.allocate(p.profile, p.n_pods)
        return result
