"""Multi-tenant cluster scheduling (the paper's declared next step).

The paper's conclusion: "we intend to extend LLM-Pilot to cover the
multi-tenancy scenario, in which multiple users compete to deploy LLM
inference services on the same hardware resources." This module
implements that extension over the reproduction's machinery:

* a :class:`ClusterInventory` of finite per-GPU-type capacity (the
  clock-aware ledger from :mod:`repro.simulation.cluster`, used here as
  static packing state);
* placement of each tenant's *ranked* deployment options (as produced
  by the recommendation tool's per-profile assessments) under capacity
  constraints;
* two policies — greedy-by-cost and a global best-fit that minimizes
  total cluster cost while serving every tenant it can;
* a bridge from the static answer to the dynamic one:
  :meth:`ScheduleResult.to_cluster_sim` turns the placements into the
  initial tenant allocations of a shared-clock
  :class:`~repro.simulation.cluster.ClusterSimulator`.

Pods keep exclusive GPU access (no co-location, matching §II-C), so
multi-tenancy is a packing problem over GPU counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hardware.profile import parse_profile
from repro.recommendation.recommender import ProfileAssessment, Recommendation
from repro.simulation.cluster import ClusterInventory, ClusterSimulator, TenantGroup

if TYPE_CHECKING:
    from repro.cluster.deployment import Deployment
    from repro.simulation.autoscale import Autoscaler
    from repro.simulation.fleet import Router
    from repro.simulation.traffic import TrafficModel

__all__ = [
    "ClusterInventory",
    "TenantRequest",
    "Placement",
    "ScheduleResult",
    "MultiTenantScheduler",
]


@dataclass(frozen=True)
class TenantRequest:
    """One tenant's deployment request: the ranked feasible options.

    ``options`` come straight from ``Recommendation.assessments`` —
    every profile with a positive umax, with pod counts and costs
    already derived from the tenant's SLA and user count.
    """

    tenant: str
    options: tuple[ProfileAssessment, ...]

    @classmethod
    def from_recommendation(cls, tenant: str, rec: Recommendation) -> "TenantRequest":
        usable = tuple(
            sorted(
                (a for a in rec.assessments if a.umax >= 1),
                key=lambda a: (a.total_cost, a.n_pods),
            )
        )
        return cls(tenant=tenant, options=usable)


@dataclass(frozen=True)
class Placement:
    tenant: str
    profile: str
    n_pods: int
    total_cost: float


@dataclass
class ScheduleResult:
    placements: list[Placement] = field(default_factory=list)
    unplaced: list[str] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return sum(p.total_cost for p in self.placements)

    @property
    def n_placed(self) -> int:
        return len(self.placements)

    def to_cluster_sim(
        self,
        deployments: dict[str, "Deployment"],
        traffics: dict[str, "TrafficModel"],
        capacity: dict[str, int],
        routers: dict[str, "Router"] | None = None,
        autoscalers: dict[str, "Autoscaler"] | None = None,
        slos: dict[str, float] | None = None,
    ) -> ClusterSimulator:
        """Turn the static packing answer into a shared-clock co-simulation.

        Each placement becomes a tenant's initial allocation: the
        tenant's :class:`~repro.cluster.deployment.Deployment` template
        (which carries its LLM, workload generator and seed) is
        reconfigured to the *scheduled* profile and pod count — with the
        max batch weight re-tuned when the scheduler picked a different
        profile than the template's — and embedded as a
        :class:`~repro.simulation.cluster.TenantGroup` drawing from a
        fresh :class:`~repro.simulation.cluster.ClusterInventory` of
        ``capacity``. Per-tenant traffic is required; routers (possibly
        admission controllers), autoscalers and reporting SLOs are
        optional. Unplaced tenants are simply absent from the cluster,
        exactly as the scheduler left them.
        """
        routers = routers or {}
        autoscalers = autoscalers or {}
        slos = slos or {}
        groups = []
        for placement in self.placements:
            template = deployments[placement.tenant]
            scheduled = template.reconfigure(
                profile=parse_profile(placement.profile),
                n_pods=placement.n_pods,
            )
            groups.append(
                scheduled.tenant_group(
                    placement.tenant,
                    traffics[placement.tenant],
                    router=routers.get(placement.tenant),
                    autoscaler=autoscalers.get(placement.tenant),
                    slo_p95_ttft_s=slos.get(placement.tenant),
                )
            )
        return ClusterSimulator(groups, ClusterInventory(capacity=dict(capacity)))


class MultiTenantScheduler:
    """Places competing tenants onto a finite GPU inventory."""

    def __init__(self, inventory: ClusterInventory) -> None:
        self.inventory = inventory

    # ---- policies -----------------------------------------------------------

    def schedule_greedy(self, tenants: list[TenantRequest]) -> ScheduleResult:
        """First-come-first-served: each tenant takes its cheapest option
        that still fits the remaining inventory."""
        result = ScheduleResult()
        for tenant in tenants:
            placed = False
            for option in tenant.options:
                if self.inventory.can_fit(option.profile, option.n_pods):
                    self.inventory.allocate(option.profile, option.n_pods)
                    result.placements.append(
                        Placement(
                            tenant=tenant.tenant,
                            profile=option.profile,
                            n_pods=option.n_pods,
                            total_cost=option.total_cost,
                        )
                    )
                    placed = True
                    break
            if not placed:
                result.unplaced.append(tenant.tenant)
        return result

    def schedule_best_fit(self, tenants: list[TenantRequest]) -> ScheduleResult:
        """Global policy: maximize placed tenants, then minimize total cost.

        Exact search over per-tenant options with branch-and-bound; the
        paper-scale problem (tens of tenants, <=14 options each) is far
        within reach because options per tenant are few and dominated
        branches prune aggressively.
        """
        tenants = list(tenants)
        best: tuple[int, float, list[Placement]] = (0, float("inf"), [])

        def dfs(i: int, placements: list[Placement], cost: float) -> None:
            nonlocal best
            placed_now = len(placements)
            remaining = len(tenants) - i
            # Bound: even placing everyone left cannot beat the best.
            if (placed_now + remaining, -cost) < (best[0], -best[1]) and (
                placed_now + remaining < best[0]
                or (placed_now + remaining == best[0] and cost >= best[1])
            ):
                return
            if i == len(tenants):
                if placed_now > best[0] or (placed_now == best[0] and cost < best[1]):
                    best = (placed_now, cost, list(placements))
                return
            tenant = tenants[i]
            # Option branches (cheapest first), then the skip branch.
            for option in tenant.options:
                if not self.inventory.can_fit(option.profile, option.n_pods):
                    continue
                self.inventory.allocate(option.profile, option.n_pods)
                placements.append(
                    Placement(
                        tenant=tenant.tenant,
                        profile=option.profile,
                        n_pods=option.n_pods,
                        total_cost=option.total_cost,
                    )
                )
                dfs(i + 1, placements, cost + option.total_cost)
                placements.pop()
                self.inventory.release(option.profile, option.n_pods)
            dfs(i + 1, placements, cost)

        dfs(0, [], 0.0)
        placed_tenants = {p.tenant for p in best[2]}
        result = ScheduleResult(
            placements=best[2],
            unplaced=[t.tenant for t in tenants if t.tenant not in placed_tenants],
        )
        # Commit the chosen allocation to the inventory.
        for p in result.placements:
            self.inventory.allocate(p.profile, p.n_pods)
        return result
