"""Deployments: replicated inference-service pods (paper §II-C).

A Deployment manages ``n`` pod replicas of the same (LLM, GPU profile)
service. Load tests co-simulate every pod on one shared virtual clock
through :class:`~repro.simulation.fleet.FleetSimulator`: a front-end
router (least-loaded by default) assigns each request to a pod the
moment it arrives, instead of the old static user split across engines
that never shared a timeline. ``run_load_test`` reproduces the Table I
experiment — per-pod throughput under a varying total user population,
demonstrating near-perfect scaling with the pod count — and, because the
pods now share a clock, the same deployment can also serve open-loop or
bursty traffic via :meth:`Deployment.simulate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.characterization.loadtest import LoadTestResult, noisy_medians
from repro.hardware.profile import GPUProfile
from repro.inference.engine import ContinuousBatchingEngine
from repro.models.llm import LLMSpec
from repro.simulation.faults import FaultInjector
from repro.simulation.fleet import (
    FleetResult,
    FleetSimulator,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
)
from repro.simulation.autoscale import Autoscaler
from repro.simulation.cluster import TenantGroup
from repro.simulation.traffic import ClosedLoopTraffic, RequestSource, TrafficModel
from repro.utils.rng import derive_rng, spawn_seed
from repro.utils.stats import relative_std
from repro.workload.generator import WorkloadGenerator

__all__ = ["Deployment", "DeploymentLoadTestResult"]


@dataclass
class DeploymentLoadTestResult:
    """Aggregated outcome of a deployment-level load test."""

    n_pods: int
    total_users: int
    per_pod: list[LoadTestResult] = field(default_factory=list)
    fleet: FleetResult | None = field(default=None, repr=False)

    @property
    def throughput_per_pod(self) -> np.ndarray:
        return np.array([p.throughput_tokens_per_s for p in self.per_pod])

    @property
    def mean_throughput_per_pod(self) -> float:
        active = self.throughput_per_pod
        return float(active.mean()) if active.size else 0.0

    @property
    def total_throughput(self) -> float:
        return float(self.throughput_per_pod.sum())

    @property
    def throughput_rsd(self) -> float:
        """Relative standard deviation of per-pod throughput."""
        return relative_std(self.throughput_per_pod)

    def ttft_median_s(self) -> float:
        vals = [p.ttft_median_s for p in self.per_pod if np.isfinite(p.ttft_median_s)]
        return float(np.median(vals)) if vals else float("nan")

    def itl_median_s(self) -> float:
        vals = [p.itl_median_s for p in self.per_pod if np.isfinite(p.itl_median_s)]
        return float(np.median(vals)) if vals else float("nan")


class Deployment:
    """``n`` replicas of one inference service behind a load balancer."""

    def __init__(
        self,
        llm: LLMSpec,
        profile: GPUProfile,
        n_pods: int,
        max_batch_weight: int,
        generator: WorkloadGenerator,
        seed: int = 0,
        fast: bool = True,
        n_zones: int = 1,
    ) -> None:
        if n_pods < 1:
            raise ValueError(f"n_pods must be >= 1, got {n_pods}")
        if n_zones < 1:
            raise ValueError(f"n_zones must be >= 1, got {n_zones}")
        self.llm = llm
        self.profile = profile
        self.n_pods = n_pods
        self.max_batch_weight = max_batch_weight
        self.generator = generator
        self.seed = seed
        # Threaded into every engine and fleet this deployment builds.
        # fast=False selects the straight-line golden-oracle simulation
        # path (bit-identical, O(pods) frontier scan + scalar decode).
        self.fast = bool(fast)
        # Availability zones for correlated fault injection: pod serials
        # round-robin across zones (see zone_of), so any n_pods spread
        # evenly and autoscaled pods keep landing in rotation.
        self.n_zones = int(n_zones)

    def scale(self, n_pods: int) -> "Deployment":
        """A copy with a different replica count."""
        return Deployment(
            llm=self.llm,
            profile=self.profile,
            n_pods=n_pods,
            max_batch_weight=self.max_batch_weight,
            generator=self.generator,
            seed=self.seed,
            fast=self.fast,
            n_zones=self.n_zones,
        )

    def reconfigure(
        self, profile: GPUProfile | None = None, n_pods: int | None = None
    ) -> "Deployment":
        """A copy moved to another GPU profile and/or replica count.

        Changing the profile re-tunes the max batch weight for the new
        hardware (the per-profile tuning the characterization tool
        performs), since a weight tuned for one GPU's memory is wrong on
        another.
        """
        new_profile = profile or self.profile
        weight = self.max_batch_weight
        if new_profile.name != self.profile.name:
            from repro.characterization import BatchWeightTuner

            weight = BatchWeightTuner(self.llm, new_profile).tune().max_batch_weight
        return Deployment(
            llm=self.llm,
            profile=new_profile,
            n_pods=self.n_pods if n_pods is None else n_pods,
            max_batch_weight=weight,
            generator=self.generator,
            seed=self.seed,
            fast=self.fast,
            n_zones=self.n_zones,
        )

    def zone_of(self, pod_serial: int) -> str:
        """Zone label for pod ``pod_serial`` (round-robin across zones)."""
        return f"zone-{pod_serial % self.n_zones}"

    def tenant_group(
        self,
        name: str,
        traffic: TrafficModel,
        router: Router | None = None,
        autoscaler: Autoscaler | None = None,
        slo_p95_ttft_s: float | None = None,
        stream_label: object = None,
        faults: FaultInjector | None = None,
    ) -> TenantGroup:
        """Embed this deployment as one tenant of a cluster co-simulation.

        The cluster-level entry point: the returned
        :class:`~repro.simulation.cluster.TenantGroup` carries a fresh
        fleet (own traffic model, router/admission and autoscaler) plus
        the GPU profile its pods occupy, ready to be handed to a
        :class:`~repro.simulation.cluster.ClusterSimulator` where it
        contends with other tenants for one inventory on one clock.
        """
        label = name if stream_label is None else stream_label
        fleet = self._make_fleet(traffic, router, label, autoscaler, faults)
        return TenantGroup(
            name=name,
            fleet=fleet,
            profile=self.profile.name,
            slo_p95_ttft_s=slo_p95_ttft_s,
        )

    def pod_factory(self, pod_serial: int) -> ContinuousBatchingEngine:
        """A fresh engine for pod ``pod_serial`` with a stable seed.

        Serials beyond the initial replica count are what the autoscaler
        mints when it scales up; the seed derivation is the same, so an
        autoscaled run is exactly reproducible.
        """
        return ContinuousBatchingEngine(
            llm=self.llm,
            profile=self.profile,
            max_batch_weight=self.max_batch_weight,
            seed=spawn_seed(
                self.seed, "pod", self.llm.name, self.profile.name, pod_serial
            ),
            fast=self.fast,
        )

    def _pods(self) -> list[ContinuousBatchingEngine]:
        """Fresh engines, one per replica, with stable per-pod seeds."""
        return [self.pod_factory(pod_index) for pod_index in range(self.n_pods)]

    def workload_source(self, stream_label: object = "deployment") -> RequestSource:
        """The seeded workload stream a fleet under ``stream_label`` draws from.

        Exactly the :class:`RequestSource` :meth:`_make_fleet` builds —
        same generator, same derived RNG, same weight cap — exposed so
        sweep layers (the elastic recommender's shared arrival cache)
        can materialize the stream once and replay it bit-identically.
        Note the derivation ignores ``n_pods``: scaled copies of this
        deployment share the stream, which is what makes a candidate
        sweep a controlled experiment.
        """
        return RequestSource(
            self.generator,
            derive_rng(self.seed, "deployment-workload", stream_label),
            self.max_batch_weight,
        )

    def _make_fleet(
        self,
        traffic: TrafficModel,
        router: Router | None,
        stream_label: object,
        autoscaler: Autoscaler | None = None,
        faults: FaultInjector | None = None,
    ) -> FleetSimulator:
        """A fresh fleet over fresh pods and a seeded workload stream."""
        source = self.workload_source(stream_label)
        return FleetSimulator(
            self._pods(),
            traffic,
            router or LeastLoadedRouter(),
            source,
            autoscaler=autoscaler,
            pod_factory=self.pod_factory,
            fast=self.fast,
            faults=faults,
            zone_of=self.zone_of,
        )

    def fleet(
        self,
        traffic: TrafficModel,
        router: Router | None = None,
        stream_label: object = "deployment",
        autoscaler: Autoscaler | None = None,
        faults: FaultInjector | None = None,
    ) -> FleetSimulator:
        """A ready-to-run fleet over this deployment (not yet started).

        :meth:`simulate` is this plus ``run``; callers that drive the
        co-simulation interface themselves — or hand the fleet to a
        scenario/cluster harness — use this to get the assembled
        simulator (fresh pods, seeded workload stream, router and
        optional autoscaler) without running it.
        """
        return self._make_fleet(traffic, router, stream_label, autoscaler, faults)

    def simulate(
        self,
        traffic: TrafficModel,
        duration_s: float,
        router: Router | None = None,
        warmup_s: float = 0.0,
        stream_label: object = "deployment",
        keep_samples: bool = True,
        autoscaler: Autoscaler | None = None,
        faults: FaultInjector | None = None,
    ) -> FleetResult:
        """Co-simulate the deployment under an arbitrary traffic model.

        This is the general entry point the old static user split could
        not express: open-loop, diurnal or bursty arrivals hitting the
        whole replica set through a front-end router on one shared
        virtual clock. With ``autoscaler`` set, ``n_pods`` is only the
        *initial* fleet size — the policy resizes it on the shared clock
        (cold-started pods join late, drained pods finish their residual
        work and retire), and the result carries the scale-event log,
        provisioned pod-seconds and shed/admitted counts.
        """
        return self._make_fleet(traffic, router, stream_label, autoscaler, faults).run(
            duration_s=duration_s, warmup_s=warmup_s, keep_samples=keep_samples
        )

    def run_load_test(
        self,
        total_users: int,
        duration_s: float = 120.0,
        router: Router | None = None,
        measurement_noise_sigma: float = 0.015,
        autoscaler: Autoscaler | None = None,
    ) -> DeploymentLoadTestResult:
        """Drive ``total_users`` closed-loop users against the deployment.

        All pods share one virtual clock; every request (including each
        user's follow-up after a completion) is routed by ``router``
        (least-loaded by default), reproducing what the cluster's front
        end does. Per-pod metrics get independent measurement noise, the
        run-to-run spread that Table I quantifies with the relative
        standard deviation. Pods the router never sent work to are
        omitted from ``per_pod`` (a single user saturates nothing).

        With ``autoscaler`` set the pod count follows the policy instead
        of staying at ``n_pods``; ``result.fleet`` then carries the
        scale-event log and pod-second bill.
        """
        if total_users < 1:
            raise ValueError(f"total_users must be >= 1, got {total_users}")
        fleet = self._make_fleet(
            ClosedLoopTraffic(total_users),
            # Round-robin of the *initial* user population = the paper's
            # static per-pod user split (follow-ups are sticky).
            router or RoundRobinRouter(),
            total_users,
            autoscaler,
        )
        # Retained results carry aggregates only, mirroring the
        # single-pod keep_results=False default.
        fleet_result = fleet.run(duration_s=duration_s, keep_samples=False)
        pods = fleet.all_pods
        # Actual per-pod user placement (== an even split for the default
        # round-robin router; custom routers may place users unevenly).
        # Pods the autoscaler added after t=0 held none of the initial
        # population.
        shares = fleet.initial_routed_counts + [0] * (
            len(pods) - len(fleet.initial_routed_counts)
        )
        out = DeploymentLoadTestResult(
            n_pods=self.n_pods, total_users=total_users, fleet=fleet_result
        )
        elapsed = fleet_result.duration_s
        for pod_index, (engine, pod_stats) in enumerate(
            zip(pods, fleet_result.per_pod)
        ):
            if engine.stats.tokens_generated == 0 and pod_stats.arrivals_routed == 0:
                continue
            ttft, ttft_inputs = engine.ttft_samples()
            itl = engine.itl_samples()
            completed = list(engine.metrics.completed)
            noise_rng = derive_rng(
                self.seed,
                "pod-noise",
                self.llm.name,
                self.profile.name,
                pod_index,
                total_users,
            )
            ttft_m, nttft_m, itl_m, throughput, e2e = noisy_medians(
                ttft,
                ttft_inputs,
                itl,
                completed,
                engine.stats.tokens_generated,
                elapsed,
                noise_rng,
                measurement_noise_sigma,
            )
            out.per_pod.append(
                LoadTestResult(
                    concurrent_users=shares[pod_index],
                    duration_s=elapsed,
                    ttft_median_s=ttft_m,
                    nttft_median_s=nttft_m,
                    itl_median_s=itl_m,
                    throughput_tokens_per_s=throughput,
                    e2e_median_s=e2e,
                    requests_completed=pod_stats.requests_completed,
                    first_tokens_served=int(ttft.size),
                    tokens_generated=engine.stats.tokens_generated,
                    queue_depth_end=engine.queue_depth,
                    arrivals=pod_stats.arrivals_routed,
                )
            )
        return out
