"""Deployments: replicated inference-service pods (paper §II-C).

A Deployment manages ``n`` pod replicas of the same (LLM, GPU profile)
service; load balancing distributes users across pods, which operate
independently (each pod has exclusive GPUs, no co-location effects).
``run_load_test`` reproduces the Table I experiment: per-pod throughput
under a varying total user population, demonstrating near-perfect
scaling with the pod count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.characterization.loadtest import LoadTestResult, run_load_test
from repro.cluster.balancer import split_users
from repro.hardware.profile import GPUProfile
from repro.inference.engine import ContinuousBatchingEngine
from repro.models.llm import LLMSpec
from repro.utils.rng import spawn_seed
from repro.utils.stats import relative_std
from repro.workload.generator import WorkloadGenerator

__all__ = ["Deployment", "DeploymentLoadTestResult"]


@dataclass
class DeploymentLoadTestResult:
    """Aggregated outcome of a deployment-level load test."""

    n_pods: int
    total_users: int
    per_pod: list[LoadTestResult] = field(default_factory=list)

    @property
    def throughput_per_pod(self) -> np.ndarray:
        return np.array([p.throughput_tokens_per_s for p in self.per_pod])

    @property
    def mean_throughput_per_pod(self) -> float:
        active = self.throughput_per_pod
        return float(active.mean()) if active.size else 0.0

    @property
    def total_throughput(self) -> float:
        return float(self.throughput_per_pod.sum())

    @property
    def throughput_rsd(self) -> float:
        """Relative standard deviation of per-pod throughput."""
        return relative_std(self.throughput_per_pod)

    def ttft_median_s(self) -> float:
        vals = [p.ttft_median_s for p in self.per_pod if np.isfinite(p.ttft_median_s)]
        return float(np.median(vals)) if vals else float("nan")

    def itl_median_s(self) -> float:
        vals = [p.itl_median_s for p in self.per_pod if np.isfinite(p.itl_median_s)]
        return float(np.median(vals)) if vals else float("nan")


class Deployment:
    """``n`` replicas of one inference service behind a load balancer."""

    def __init__(
        self,
        llm: LLMSpec,
        profile: GPUProfile,
        n_pods: int,
        max_batch_weight: int,
        generator: WorkloadGenerator,
        seed: int = 0,
    ) -> None:
        if n_pods < 1:
            raise ValueError(f"n_pods must be >= 1, got {n_pods}")
        self.llm = llm
        self.profile = profile
        self.n_pods = n_pods
        self.max_batch_weight = max_batch_weight
        self.generator = generator
        self.seed = seed

    def scale(self, n_pods: int) -> "Deployment":
        """A copy with a different replica count."""
        return Deployment(
            llm=self.llm,
            profile=self.profile,
            n_pods=n_pods,
            max_batch_weight=self.max_batch_weight,
            generator=self.generator,
            seed=self.seed,
        )

    def run_load_test(
        self, total_users: int, duration_s: float = 120.0
    ) -> DeploymentLoadTestResult:
        """Drive ``total_users`` closed-loop users against the deployment.

        Pods are independent (inference is embarrassingly parallel at the
        request level), so each pod simulates its share of the users; the
        different per-pod seeds reproduce the real-world run-to-run spread
        that Table I quantifies with the relative standard deviation.
        """
        if total_users < 1:
            raise ValueError(f"total_users must be >= 1, got {total_users}")
        shares = split_users(total_users, self.n_pods)
        out = DeploymentLoadTestResult(n_pods=self.n_pods, total_users=total_users)
        for pod_index, users in enumerate(shares):
            if users == 0:
                continue
            pod_seed = spawn_seed(
                self.seed, "pod", self.llm.name, self.profile.name, pod_index
            )
            engine = ContinuousBatchingEngine(
                llm=self.llm,
                profile=self.profile,
                max_batch_weight=self.max_batch_weight,
                seed=pod_seed,
            )
            out.per_pod.append(
                run_load_test(
                    engine,
                    self.generator,
                    concurrent_users=users,
                    duration_s=duration_s,
                    seed=pod_seed,
                )
            )
        return out
