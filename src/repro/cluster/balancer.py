"""Deprecated shim for load-balancer helpers (paper §II-C).

User partitioning now lives with the sticky-session logic in
:mod:`repro.simulation.traffic` (round-robin routing of a sticky
closed-loop population produces exactly these splits). Importing this
module emits a :class:`DeprecationWarning`; update imports to
``repro.simulation.traffic``.
"""

from __future__ import annotations

import warnings

from repro.simulation.traffic import round_robin_assignment, split_users

__all__ = ["split_users", "round_robin_assignment"]

warnings.warn(
    "repro.cluster.balancer is deprecated; import split_users and "
    "round_robin_assignment from repro.simulation.traffic",
    DeprecationWarning,
    stacklevel=2,
)
