"""Load balancing across the pods of a deployment (paper §II-C).

User partitioning now lives with the sticky-session logic in
:mod:`repro.simulation.traffic` (round-robin routing of a sticky
closed-loop population produces exactly these splits); this module
re-exports the public names so ``repro.cluster`` keeps its API.
"""

from __future__ import annotations

from repro.simulation.traffic import round_robin_assignment, split_users

__all__ = ["split_users", "round_robin_assignment"]
