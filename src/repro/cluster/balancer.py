"""Load balancing across the pods of a deployment (paper §II-C).

The platform load-balances users across independent pods; for the
closed-loop benchmark harness this amounts to partitioning the user
population as evenly as possible (round-robin assignment)."""

from __future__ import annotations

__all__ = ["split_users", "round_robin_assignment"]


def split_users(n_users: int, n_pods: int) -> list[int]:
    """Users per pod under round-robin balancing (sums to ``n_users``)."""
    if n_pods < 1:
        raise ValueError(f"n_pods must be >= 1, got {n_pods}")
    if n_users < 0:
        raise ValueError(f"n_users must be >= 0, got {n_users}")
    base, extra = divmod(n_users, n_pods)
    return [base + (1 if i < extra else 0) for i in range(n_pods)]


def round_robin_assignment(n_users: int, n_pods: int) -> list[int]:
    """Pod index for each user id under round-robin assignment."""
    if n_pods < 1:
        raise ValueError(f"n_pods must be >= 1, got {n_pods}")
    return [u % n_pods for u in range(n_users)]
