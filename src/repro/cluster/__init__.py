"""Kubernetes-like deployment layer: replicated pods, load balancing and
multi-tenant cluster scheduling (the paper's declared next step)."""

from repro.cluster.balancer import split_users, round_robin_assignment
from repro.cluster.deployment import Deployment, DeploymentLoadTestResult
from repro.cluster.scheduler import (
    ClusterInventory,
    TenantRequest,
    Placement,
    ScheduleResult,
    MultiTenantScheduler,
)

__all__ = [
    "split_users",
    "round_robin_assignment",
    "Deployment",
    "DeploymentLoadTestResult",
    "ClusterInventory",
    "TenantRequest",
    "Placement",
    "ScheduleResult",
    "MultiTenantScheduler",
]
