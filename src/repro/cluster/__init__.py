"""Kubernetes-like deployment layer: replicated pods, load balancing,
multi-tenant cluster scheduling and shared-clock multi-tenant
co-simulation (the paper's declared next step)."""

# Imported from their real home, not repro.cluster.balancer: that shim
# now warns on import, and merely importing this package must not.
from repro.simulation.traffic import split_users, round_robin_assignment
from repro.cluster.deployment import Deployment, DeploymentLoadTestResult
from repro.cluster.scheduler import (
    ClusterInventory,
    TenantRequest,
    Placement,
    ScheduleResult,
    MultiTenantScheduler,
    FeedbackIteration,
    FeedbackOutcome,
    FeedbackScheduler,
)
from repro.simulation.cluster import (
    ClusterResult,
    ClusterSimulator,
    InventoryEvent,
    TenantGroup,
)

__all__ = [
    "split_users",
    "round_robin_assignment",
    "Deployment",
    "DeploymentLoadTestResult",
    "ClusterInventory",
    "TenantRequest",
    "Placement",
    "ScheduleResult",
    "MultiTenantScheduler",
    "FeedbackIteration",
    "FeedbackOutcome",
    "FeedbackScheduler",
    "ClusterResult",
    "ClusterSimulator",
    "InventoryEvent",
    "TenantGroup",
]
