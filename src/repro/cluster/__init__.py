"""Kubernetes-like deployment layer: replicated pods, load balancing,
multi-tenant cluster scheduling and shared-clock multi-tenant
co-simulation (the paper's declared next step)."""

from repro.simulation.traffic import split_users, round_robin_assignment
from repro.cluster.deployment import Deployment, DeploymentLoadTestResult
from repro.cluster.scheduler import (
    ClusterInventory,
    TenantRequest,
    Placement,
    ScheduleResult,
    MultiTenantScheduler,
    FeedbackIteration,
    FeedbackOutcome,
    FeedbackScheduler,
)
from repro.simulation.cluster import (
    ClusterResult,
    ClusterSimulator,
    InventoryEvent,
    TenantGroup,
)

__all__ = [
    "split_users",
    "round_robin_assignment",
    "Deployment",
    "DeploymentLoadTestResult",
    "ClusterInventory",
    "TenantRequest",
    "Placement",
    "ScheduleResult",
    "MultiTenantScheduler",
    "FeedbackIteration",
    "FeedbackOutcome",
    "FeedbackScheduler",
    "ClusterResult",
    "ClusterSimulator",
    "InventoryEvent",
    "TenantGroup",
]


def __getattr__(name):
    # The repro.cluster.balancer deprecation shim is retired; keep the
    # old import path failing with a pointer instead of a bare miss.
    if name == "balancer":
        raise ModuleNotFoundError(
            "repro.cluster.balancer was removed; import split_users and "
            "round_robin_assignment from repro.simulation.traffic"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
