"""Inference-server simulator (TGIS stand-in): continuous batching engine,
analytic cost model, memory/OOM accounting and request records."""

from repro.inference.request import InferenceRequest, RequestResult
from repro.inference.costmodel import CostModel, CostModelConfig
from repro.inference.memory import (
    MemoryModel,
    MemoryConfig,
    CornerCaseBatch,
    corner_case_batches,
)
from repro.inference.engine import ContinuousBatchingEngine, EngineStats
from repro.inference.server import InferenceServer, DeploymentSpec
from repro.inference.steadystate import SteadyStateEstimate, SteadyStateEstimator

__all__ = [
    "InferenceRequest",
    "RequestResult",
    "CostModel",
    "CostModelConfig",
    "MemoryModel",
    "MemoryConfig",
    "CornerCaseBatch",
    "corner_case_batches",
    "ContinuousBatchingEngine",
    "EngineStats",
    "InferenceServer",
    "DeploymentSpec",
    "SteadyStateEstimate",
    "SteadyStateEstimator",
]
