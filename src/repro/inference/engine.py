"""Discrete-event continuous-batching engine (TGIS stand-in).

The engine implements the server-side scheduling the paper describes
(§II-B): a single batch of in-flight requests; when requests finish, new
requests are admitted from the FIFO queue as long as their *weight*
(total input+output tokens, times client batch size) fits under the
configured maximum batch weight. Prompt processing (prefill) of newly
admitted requests blocks decoding — which is what makes inter-token
latency grow with arrival rate before memory saturation, and the
time-to-first-token jump once the batch weight is exhausted and requests
queue.

Each scheduler iteration advances virtual time by the cost-model step
time (with a small seeded lognormal jitter, playing the role of real
measurement noise). Per-token client timestamps are tracked exactly:
every decode step records, for each active request, the gap since that
request's previous token.

Two implementations of the decode step coexist. The scalar loop (the
golden oracle, ``fast=False``) walks the active list one request at a
time; the fast core (``fast=True``, the default) keeps the per-request
decode state — last-token timestamp, generated count, output target,
batch size — in parallel numpy arrays and advances the whole batch in
a handful of array operations. Both paths draw the same single noise
sample per step and perform the same IEEE-754 double arithmetic
element-wise, so their outputs are bit-identical on pinned seeds (see
``tests/test_inference.py`` and the golden pins in
``tests/test_simulation.py``); ``benchmarks/bench_core_speed.py``
enforces the equality and the speedup.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.hardware.profile import GPUProfile
from repro.inference.costmodel import CostModel
from repro.inference.request import InferenceRequest, RequestResult
from repro.models.llm import LLMSpec
from repro.simulation.metrics import MetricsCollector
from repro.utils.rng import derive_rng

__all__ = ["ContinuousBatchingEngine", "EngineStats"]


@dataclass
class _Active:
    """Server-side state of one in-flight request."""

    request: InferenceRequest
    submitted_at: float
    first_token_at: float = -1.0
    generated: int = 0
    last_token_at: float = -1.0

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_tokens


@dataclass
class EngineStats:
    """Aggregate counters exposed after (or during) a run."""

    steps: int = 0
    prefill_steps: int = 0
    decode_steps: int = 0
    tokens_generated: int = 0  # client-visible tokens (batch entries counted)
    requests_completed: int = 0
    busy_time_s: float = 0.0


class ContinuousBatchingEngine:
    """Single-pod inference server simulator."""

    def __init__(
        self,
        llm: LLMSpec,
        profile: GPUProfile,
        max_batch_weight: int,
        cost_model: CostModel | None = None,
        max_batch_requests: int = 256,
        seed: int = 0,
        noise_sigma: float = 0.03,
        admission_lookahead: int = 32,
        starvation_timeout_s: float = 60.0,
        fast: bool = True,
    ) -> None:
        if max_batch_weight < 2:
            raise ValueError(f"max_batch_weight must be >= 2, got {max_batch_weight}")
        if max_batch_requests < 1:
            raise ValueError("max_batch_requests must be >= 1")
        self.llm = llm
        self.profile = profile
        self.max_batch_weight = int(max_batch_weight)
        self.max_batch_requests = max_batch_requests
        self.cost = cost_model or CostModel(llm, profile)
        self.noise_sigma = noise_sigma
        self.admission_lookahead = admission_lookahead
        self.starvation_timeout_s = starvation_timeout_s
        self._rng = derive_rng(seed, "engine", llm.name, profile.name)
        # Fault layer: a transient slowdown multiplies every step's cost.
        # Exactly 1.0 outside fault windows, where ``x * 1.0 == x`` in
        # IEEE-754 keeps fault-free runs bit-identical to an engine that
        # never heard of faults.
        self.slow_factor = 1.0

        self._time = 0.0
        self._queue: deque[tuple[InferenceRequest, float]] = deque()
        self._active: list[_Active] = []
        self._batch_weight = 0  # committed weight of active requests
        self._pending_weight = 0  # weight still waiting in the queue
        self._kv_tokens = 0  # tokens currently resident in the KV cache
        # Latency samples (ITL gaps, TTFT records, completions) live in
        # the collector; the engine only emits events into it. Each
        # engine owns its collector — sharing one across engines would
        # break warmup resets and cross-pod merging.
        self.metrics = MetricsCollector()
        self.stats = EngineStats()
        # Fast decode core: structure-of-arrays mirror of self._active.
        # Row i of each array belongs to self._active[i]; the scalar
        # oracle path (fast=False) never touches them and remains the
        # reference implementation the fast path is tested against.
        self.fast = bool(fast)
        self._soa_cap = 64
        self._soa_last = np.zeros(self._soa_cap)  # last_token_at
        self._soa_gen = np.zeros(self._soa_cap, dtype=np.int64)  # generated
        self._soa_out = np.zeros(self._soa_cap, dtype=np.int64)  # output target
        self._soa_batch = np.zeros(self._soa_cap, dtype=np.int64)  # batch size
        # Incremental mirrors of two per-step reductions: the total
        # sequence count of the active batch, and how many decode steps
        # remain until the *next* completion (every active request gains
        # exactly one token per step, so the countdown is exact). Both
        # are bookkeeping only — they change no simulated quantity.
        self._soa_seqs = 0
        self._soa_min_left = 0
        # Failed-admission memo: a scan that admitted nothing stays
        # futile until a completion frees budget/slots, or a new arrival
        # lands on a queue the scan had exhausted. Consulted by the fast
        # path only; the oracle always rescans.
        self._admit_blocked = False
        self._admit_scanned_all = False

    # ---- public API -----------------------------------------------------

    @property
    def time(self) -> float:
        """Current virtual time (seconds since engine start)."""
        return self._time

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def active_requests(self) -> int:
        return len(self._active)

    @property
    def batch_weight_in_use(self) -> int:
        return self._batch_weight

    @property
    def pending_weight(self) -> int:
        """Total weight of queued (not yet admitted) requests."""
        return self._pending_weight

    def submit(self, request: InferenceRequest, arrival_time: float | None = None) -> None:
        """Enqueue ``request``.

        ``arrival_time`` records when the client actually sent the request
        (open-loop harnesses submit arrivals that occurred during the
        previous scheduler step); it must not lie in the engine's future.
        Defaults to the current virtual time (closed-loop behaviour).
        """
        if request.weight > self.max_batch_weight:
            raise ValueError(
                f"request weight {request.weight} exceeds the maximum batch "
                f"weight {self.max_batch_weight}; the workload generator and "
                "batch-weight tuner must agree on request limits"
            )
        if arrival_time is None:
            arrival_time = self._time
        elif arrival_time > self._time + 1e-9:
            raise ValueError(
                f"arrival_time {arrival_time} is in the engine's future "
                f"(now {self._time}); advance_to() it first"
            )
        self._queue.append((request, float(arrival_time)))
        self._pending_weight += request.weight
        if self._admit_scanned_all:
            # The failed scan had examined the whole queue; this arrival
            # extends it, so the next scan may succeed.
            self._admit_blocked = False

    def advance_to(self, t: float) -> None:
        """Move virtual time forward to ``t`` (idle gap, no work done)."""
        if t > self._time:
            self._time = t

    def has_work(self) -> bool:
        return bool(self._queue or self._active)

    def step(self) -> list[RequestResult]:
        """Run one scheduler iteration; returns requests completed in it."""
        if not (self._queue or self._active):
            return []
        self.stats.steps += 1
        if self._queue and not (self.fast and self._admit_blocked):
            admitted = self._admit()
            if admitted:
                return self._prefill(admitted)
        return self._decode()

    def run_until(self, t_end: float, max_steps: int | None = None) -> list[RequestResult]:
        """Step until virtual time reaches ``t_end`` or work runs out."""
        completed: list[RequestResult] = []
        steps = 0
        while self._time < t_end and self.has_work():
            completed.extend(self.step())
            steps += 1
            if max_steps is not None and steps >= max_steps:
                break
        return completed

    def itl_samples(self) -> np.ndarray:
        """All client-observed inter-token gaps recorded so far.

        Delegates to the collector's incrementally grown buffer, so hot
        analysis loops can call this repeatedly at O(1) cost instead of
        re-concatenating per-step gap arrays.
        """
        return self.metrics.itl_samples()

    def reset_metrics(self) -> None:
        """Drop all collected metric samples and counters (warmup support).

        Engine state (active batch, queue, virtual time) is untouched —
        only the measurement side restarts, as a benchmark harness does
        after its warmup phase.
        """
        self.metrics.reset()
        self.stats = EngineStats()

    def ttft_samples(self) -> tuple[np.ndarray, np.ndarray]:
        """(ttft_seconds, input_tokens) for every first token served."""
        return self.metrics.ttft_samples()

    def evacuate(self) -> tuple[list[InferenceRequest], list[InferenceRequest]]:
        """Drop all queued and in-flight work (pod-crash support).

        Returns ``(queued, active)`` requests in FIFO/admission order so
        the fleet layer can requeue or count them lost. Scheduling state
        (batch weight, KV residency, the fast core's mirrors) resets to
        empty; virtual time and already-recorded metrics are untouched —
        tokens streamed before the crash were really delivered.
        """
        queued = [request for request, _ in self._queue]
        active = [a.request for a in self._active]
        self._queue.clear()
        self._active = []
        self._batch_weight = 0
        self._pending_weight = 0
        self._kv_tokens = 0
        self._soa_seqs = 0
        self._soa_min_left = 0
        self._admit_blocked = False
        self._admit_scanned_all = False
        return queued, active

    # ---- internals --------------------------------------------------------

    def _noise(self) -> float:
        if self.noise_sigma <= 0:
            return 1.0
        return float(self._rng.lognormal(0.0, self.noise_sigma))

    def _admit(self) -> list[_Active]:
        """Admission from the waiting queue under the batch-weight cap.

        The scheduler scans the queue in FIFO order and admits every
        request that fits the remaining weight budget, looking past a
        blocked head up to ``admission_lookahead`` entries (as real
        next-batch selection does). To prevent starvation of large
        requests, reordering is suspended once the head has waited longer
        than ``starvation_timeout_s`` — the batch then drains until the
        head fits.
        """
        admitted: list[_Active] = []
        if not self._queue:
            return admitted
        if self.fast and self._admit_blocked:
            # Nothing has changed since a scan admitted nothing: the
            # queue is unchanged (admission is the only consumer), the
            # budget is unchanged (only completions free weight), and
            # the passage of time can only *suspend* reordering, which
            # never turns a failed scan into a successful one.
            return admitted
        head_wait = self._time - self._queue[0][1]
        allow_reorder = head_wait < self.starvation_timeout_s
        budget = self.max_batch_weight - self._batch_weight
        slots = self.max_batch_requests - len(self._active)
        skipped: list[tuple[InferenceRequest, float]] = []
        while self._queue and slots > 0:
            request, submitted_at = self._queue.popleft()
            if request.weight <= budget:
                budget -= request.weight
                slots -= 1
                self._batch_weight += request.weight
                self._pending_weight -= request.weight
                admitted.append(_Active(request=request, submitted_at=submitted_at))
                continue
            skipped.append((request, submitted_at))
            if not allow_reorder or len(skipped) >= self.admission_lookahead:
                break
        scanned_all = not self._queue
        for item in reversed(skipped):
            self._queue.appendleft(item)
        if not admitted:
            self._admit_blocked = True
            self._admit_scanned_all = scanned_all
        return admitted

    def _prefill(self, admitted: list[_Active]) -> list[RequestResult]:
        """Prompt-processing pass over the newly admitted requests."""
        self.stats.prefill_steps += 1
        prompt_tokens = sum(
            a.request.input_tokens * a.request.batch_size for a in admitted
        )
        dt = self.cost.prefill_time(prompt_tokens) * self._noise() * self.slow_factor
        self._time += dt
        self.stats.busy_time_s += dt

        completed: list[RequestResult] = []
        first_tokens = 0
        for a in admitted:
            a.first_token_at = self._time
            a.last_token_at = self._time
            a.generated = 1  # the prompt phase emits the first output token
            self.metrics.record_first_token(
                self._time - a.submitted_at, a.request.input_tokens, self._time
            )
            self._kv_tokens += (a.request.input_tokens + 1) * a.request.batch_size
            self.stats.tokens_generated += a.request.batch_size
            first_tokens += a.request.batch_size
            if a.done:
                completed.append(self._finish(a))
            else:
                self._active.append(a)
                if self.fast:
                    self._soa_append(len(self._active) - 1, a)
        self.metrics.record_tokens(first_tokens, self._time)
        return completed

    def _soa_append(self, row: int, a: _Active) -> None:
        """Mirror a freshly admitted request into the decode arrays."""
        if row >= self._soa_cap:
            while self._soa_cap <= row:
                self._soa_cap *= 2
            for name in ("_soa_last", "_soa_gen", "_soa_out", "_soa_batch"):
                old = getattr(self, name)
                grown = np.zeros(self._soa_cap, dtype=old.dtype)
                grown[: old.size] = old
                setattr(self, name, grown)
        self._soa_last[row] = a.last_token_at
        self._soa_gen[row] = a.generated
        self._soa_out[row] = a.request.output_tokens
        self._soa_batch[row] = a.request.batch_size
        self._soa_seqs += a.request.batch_size
        left = a.request.output_tokens - a.generated
        if row == 0 or left < self._soa_min_left:
            self._soa_min_left = left

    def _decode_fast(self) -> list[RequestResult]:
        """Vectorized decode step over the structure-of-arrays mirror.

        Bit-identical to :meth:`_decode` by construction: one noise draw
        per step, ``n_seqs`` is the same exact integer, and the gap
        subtraction is the same IEEE-754 double op applied element-wise.
        Completions are emitted in active-list order, exactly as the
        scalar loop does. When extending this kernel, keep every float
        operation an element-wise mirror of the scalar statement and
        never reorder reductions — see docs/architecture.md ("Fast core
        vs golden oracle").
        """
        stats = self.stats
        stats.decode_steps += 1
        n = len(self._active)
        n_seqs = self._soa_seqs
        dt = (
            self.cost.decode_step_time(n_seqs, self._kv_tokens)
            * self._noise()
            * self.slow_factor
        )
        now = self._time + dt
        self._time = now
        stats.busy_time_s += dt

        last = self._soa_last
        # The gap samples are subtracted straight into the collector's
        # buffer — same operands and order as the oracle's per-request
        # ``now - a.last_token_at``, minus one array copy per step.
        np.subtract(now, last[:n], out=self.metrics.gap_sink(n))
        last[:n] = now
        self._soa_gen[:n] += 1
        self._kv_tokens += n_seqs
        stats.tokens_generated += n_seqs
        completed: list[RequestResult] = []
        # Every active request gains exactly one token per step, so the
        # smallest remaining-output count drops by exactly one — the
        # done-comparison only needs to run when that countdown hits 0.
        self._soa_min_left -= 1
        if self._soa_min_left <= 0:
            done = self._soa_gen[:n] >= self._soa_out[:n]
            for i in np.flatnonzero(done):
                a = self._active[i]
                # Copy the authoritative array state back before the
                # result is assembled (still-active rows stay lazily
                # mirrored — the arrays are the source of truth).
                a.generated = int(self._soa_gen[i])
                a.last_token_at = now
                self._soa_seqs -= a.request.batch_size
                completed.append(self._finish(a))
            keep = ~done
            self._active = [a for a, k in zip(self._active, keep) if k]
            m = len(self._active)
            for arr in (self._soa_last, self._soa_gen, self._soa_out, self._soa_batch):
                arr[:m] = arr[:n][keep]
            self._soa_min_left = (
                int((self._soa_out[:m] - self._soa_gen[:m]).min()) if m else 0
            )
        self.metrics.record_tokens(n_seqs, now)
        return completed

    def _decode(self) -> list[RequestResult]:
        """One decode step: every active sequence gains one token."""
        if self.fast:
            return self._decode_fast()
        self.stats.decode_steps += 1
        n_seqs = sum(a.request.batch_size for a in self._active)
        dt = (
            self.cost.decode_step_time(n_seqs, self._kv_tokens)
            * self._noise()
            * self.slow_factor
        )
        self._time += dt
        self.stats.busy_time_s += dt
        now = self._time

        gaps = np.empty(len(self._active))
        still_active: list[_Active] = []
        completed: list[RequestResult] = []
        for i, a in enumerate(self._active):
            gaps[i] = now - a.last_token_at
            a.last_token_at = now
            a.generated += 1
            self._kv_tokens += a.request.batch_size
            self.stats.tokens_generated += a.request.batch_size
            if a.done:
                completed.append(self._finish(a))
            else:
                still_active.append(a)
        self.metrics.record_gaps(gaps, now)
        self.metrics.record_tokens(n_seqs, now)
        self._active = still_active
        return completed

    def _finish(self, a: _Active) -> RequestResult:
        req = a.request
        self._batch_weight -= req.weight
        self._admit_blocked = False
        self._kv_tokens -= (req.input_tokens + req.output_tokens) * req.batch_size
        self.stats.requests_completed += 1
        result = RequestResult(
            request=req,
            submitted_at=a.submitted_at,
            first_token_at=a.first_token_at,
            finished_at=self._time,
        )
        self.metrics.record_completion(result)
        return result
