"""GPU memory accounting and OOM semantics.

Feasibility (Table III) and batch-weight tuning (§III-C2) both reduce to
one question: does a given batch fit in the profile's aggregate memory
after the weights are loaded? The model accounts for:

* model weights (serving precision),
* the KV cache of the batch (batch weight x per-token KV bytes),
* activation workspace of the largest prefill chunk — quadratic in the
  prompt length for models served without flash attention, linear with it,
* a fixed CUDA/runtime reserve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.profile import GPUProfile
from repro.models.llm import LLMSpec

__all__ = ["MemoryModel", "MemoryConfig", "CornerCaseBatch", "corner_case_batches"]

_GB = 1e9


@dataclass(frozen=True)
class MemoryConfig:
    """Constants of the memory model."""

    #: Fraction of physical memory usable by the serving runtime.
    usable_fraction: float = 0.96
    #: Fixed runtime reserve per GPU (CUDA context, NCCL buffers...).
    runtime_reserve_gb: float = 1.7
    #: Linear activation bytes per prefill token, as a multiple of d_model
    #: times the parameter byte width.
    activation_multiplier: float = 28.0
    #: Workspace bytes per attention-score element for non-flash models
    #: (one layer's scores materialized at a time).
    attention_score_bytes: float = 2.0


@dataclass(frozen=True)
class CornerCaseBatch:
    """A worst-case batch composition for a candidate batch weight.

    ``n_requests`` requests, each with ``input_tokens`` prompt tokens and
    ``output_tokens`` generation budget; total weight is their sum.
    """

    name: str
    n_requests: int
    input_tokens: int
    output_tokens: int

    @property
    def total_weight(self) -> int:
        return self.n_requests * (self.input_tokens + self.output_tokens)

    @property
    def max_prefill_tokens(self) -> int:
        """Largest single-request prompt the server must prefill."""
        return self.input_tokens


class MemoryModel:
    """Memory accounting for one (LLM, GPU profile) pair."""

    def __init__(
        self,
        llm: LLMSpec,
        profile: GPUProfile,
        config: MemoryConfig | None = None,
    ) -> None:
        self.llm = llm
        self.profile = profile
        self.config = config or MemoryConfig()

    # ---- capacity ----------------------------------------------------------

    @property
    def capacity_bytes(self) -> float:
        """Usable aggregate memory after the runtime reserve."""
        cfg = self.config
        total = self.profile.total_memory_gb * _GB * cfg.usable_fraction
        return total - cfg.runtime_reserve_gb * _GB * self.profile.count

    @property
    def weights_fit(self) -> bool:
        return self.llm.weights_bytes <= self.capacity_bytes

    @property
    def free_after_weights_bytes(self) -> float:
        return self.capacity_bytes - self.llm.weights_bytes

    # ---- usage -----------------------------------------------------------------

    def activation_bytes(self, prefill_tokens: int) -> float:
        """Peak activation workspace for a prefill over ``prefill_tokens``."""
        cfg = self.config
        linear = (
            cfg.activation_multiplier
            * self.llm.d_model
            * self.llm.bytes_per_param
            * prefill_tokens
        )
        if self.llm.uses_flash_attention:
            return linear
        # Non-flash attention materializes the (T x T) score matrix per head
        # for one layer at a time.
        quadratic = (
            cfg.attention_score_bytes
            * self.llm.n_heads
            * float(prefill_tokens) ** 2
        )
        return linear + quadratic

    def batch_usage_bytes(self, batch: CornerCaseBatch) -> float:
        """Peak memory used by weights + KV + activations for ``batch``."""
        kv = batch.total_weight * self.llm.kv_bytes_per_token
        act = self.activation_bytes(batch.max_prefill_tokens)
        return self.llm.weights_bytes + kv + act

    def would_oom(self, batch: CornerCaseBatch) -> bool:
        return self.batch_usage_bytes(batch) > self.capacity_bytes

    # ---- derived limits ----------------------------------------------------------

    def kv_token_capacity(self) -> int:
        """Upper bound on KV-resident tokens (ignoring activations)."""
        free = self.free_after_weights_bytes
        if free <= 0:
            return 0
        return int(free / self.llm.kv_bytes_per_token)


def corner_case_batches(
    max_batch_weight: int,
    max_input_tokens: int = 4093,
    min_output_tokens: int = 1,
) -> list[CornerCaseBatch]:
    """Worst-case batch compositions for a candidate batch weight.

    Mirrors the paper's tuning step (§III-C2): "a sequence of batches ...
    designed to test all possible corner cases, with respect to the batch
    size, number of input and output tokens, that can be constructed
    according to the given maximum batch weight".
    """
    if max_batch_weight < 2:
        raise ValueError("max_batch_weight must be >= 2")
    cases = []

    # (1) One request using the whole weight with the longest legal prompt:
    # stresses prefill activations.
    inp = min(max_input_tokens, max_batch_weight - min_output_tokens)
    cases.append(
        CornerCaseBatch(
            name="single-long-prompt",
            n_requests=1,
            input_tokens=inp,
            output_tokens=max_batch_weight - inp,
        )
    )

    # (2) One request that is almost all generation: stresses KV growth.
    cases.append(
        CornerCaseBatch(
            name="single-long-generation",
            n_requests=1,
            input_tokens=1,
            output_tokens=max_batch_weight - 1,
        )
    )

    # (3) Many minimal requests filling the weight: stresses batch size.
    n = max_batch_weight // 2
    cases.append(
        CornerCaseBatch(
            name="many-small", n_requests=n, input_tokens=1, output_tokens=1
        )
    )

    # (4) Balanced medium requests (typical shape at full weight).
    per_req = 512
    n_bal = max(1, max_batch_weight // per_req)
    cases.append(
        CornerCaseBatch(
            name="balanced",
            n_requests=n_bal,
            input_tokens=per_req // 2,
            output_tokens=per_req - per_req // 2,
        )
    )
    return cases
