"""Inference request and response records used by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["InferenceRequest", "RequestResult"]


@dataclass
class InferenceRequest:
    """One inference request as submitted by a client.

    ``input_tokens``/``output_tokens`` are the ground-truth token counts
    of the request (the simulator, like a real benchmark harness, forces
    the generation length via min/max-new-tokens so experiments are
    reproducible). ``params`` carries the remaining request parameters
    (decoding method, temperature, ...) for cost-model adjustments.
    """

    request_id: int
    input_tokens: int
    output_tokens: int
    batch_size: int = 1
    params: dict[str, float] = field(default_factory=dict)
    input_text: str | None = None

    def __post_init__(self) -> None:
        if self.input_tokens < 1:
            raise ValueError(f"input_tokens must be >= 1, got {self.input_tokens}")
        if self.output_tokens < 1:
            raise ValueError(f"output_tokens must be >= 1, got {self.output_tokens}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    @property
    def weight(self) -> int:
        """The request's contribution to the batch weight: total input plus
        output tokens (paper §II-B), times the client-side batch size."""
        return (self.input_tokens + self.output_tokens) * self.batch_size


@dataclass
class RequestResult:
    """Completion record with per-token arrival timestamps (client side)."""

    request: InferenceRequest
    submitted_at: float
    first_token_at: float
    finished_at: float
    token_times: list[float] = field(default_factory=list)

    @property
    def ttft(self) -> float:
        """Time to first token: queueing + prompt-processing latency."""
        return self.first_token_at - self.submitted_at

    @property
    def normalized_ttft(self) -> float:
        """TTFT divided by the number of input tokens (paper's nTTFT)."""
        return self.ttft / self.request.input_tokens

    @property
    def e2e_latency(self) -> float:
        return self.finished_at - self.submitted_at

    def inter_token_latencies(self) -> list[float]:
        """Gaps between successive output tokens, excluding the first token."""
        return [
            self.token_times[i] - self.token_times[i - 1]
            for i in range(1, len(self.token_times))
        ]
