"""Analytic timing model for LLM inference on a GPU profile.

This is the heart of the hardware substitution (see DESIGN.md): instead
of running TGIS on physical GPUs we compute step times from first-order
roofline terms, which reproduce the phenomena the paper measures:

* the **prompt-processing (prefill) phase is compute-bound** (§V-B):
  time grows linearly with the number of prompt tokens processed, scaled
  by the profile's tensor-core throughput;
* the **decode phase is memory-bandwidth-bound**: each step streams the
  model weights plus the active KV cache from HBM, so inter-token
  latency is flat in batch size until the KV cache saturates memory and
  grows with it afterwards;
* **tensor parallelism** over g GPUs divides weight/KV traffic and
  compute by g but adds per-layer all-reduce time over NVLink or PCIe.

The constants (efficiencies, overheads) are fixed library-wide so that
cross-GPU comparisons depend only on datasheet numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.profile import GPUProfile
from repro.models.llm import LLMSpec

__all__ = ["CostModel", "CostModelConfig"]


@dataclass(frozen=True)
class CostModelConfig:
    """Tunable constants of the analytic model."""

    prefill_compute_efficiency: float = 0.45
    decode_compute_efficiency: float = 0.35
    memory_bandwidth_efficiency: float = 0.65
    #: Fixed scheduler/kernel-launch overhead per engine step (seconds).
    step_overhead_base_s: float = 0.002
    #: Additional per-layer launch overhead per step (seconds).
    step_overhead_per_layer_s: float = 4.0e-5
    #: Per-all-reduce latency for NVLink / PCIe interconnects (seconds).
    nvlink_collective_latency_s: float = 4.0e-6
    pcie_collective_latency_s: float = 1.6e-5
    #: Fraction of weights streamed per decode step for encoder-decoder
    #: models (the encoder does not run during decode).
    encoder_decoder_decode_fraction: float = 0.6

    def __post_init__(self) -> None:
        for name in (
            "prefill_compute_efficiency",
            "decode_compute_efficiency",
            "memory_bandwidth_efficiency",
        ):
            v = getattr(self, name)
            if not 0.0 < v <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {v}")


class CostModel:
    """Timing model for one (LLM, GPU profile) pair."""

    def __init__(
        self,
        llm: LLMSpec,
        profile: GPUProfile,
        config: CostModelConfig | None = None,
    ) -> None:
        self.llm = llm
        self.profile = profile
        self.config = config or CostModelConfig()
        cfg = self.config
        g = profile.count

        self._effective_tflops = profile.total_fp16_tflops * 1e12
        self._effective_bandwidth = (
            profile.total_memory_bandwidth_gbps * 1e9 * cfg.memory_bandwidth_efficiency
        )
        decode_frac = (
            cfg.encoder_decoder_decode_fraction if llm.is_encoder_decoder else 1.0
        )
        self._decode_weight_bytes = llm.weights_bytes * decode_frac

        # Tensor-parallel all-reduce cost: per token, each layer reduces the
        # activation vector across the group (ring all-reduce moves
        # 2*(g-1)/g of the payload through the slowest link).
        if g > 1:
            link_bw = profile.gpu.interconnect_bandwidth_gbps() * 1e9
            payload_factor = 2.0 * (g - 1) / g
            bytes_per_token_per_layer = llm.d_model * llm.bytes_per_param
            total_layers = llm.n_layers + llm.n_encoder_layers
            self._comm_bytes_per_token = (
                payload_factor * bytes_per_token_per_layer * total_layers
            )
            self._comm_bandwidth = link_bw
            latency = (
                self.config.nvlink_collective_latency_s
                if profile.gpu.nvlink
                else self.config.pcie_collective_latency_s
            )
            self._comm_latency_per_step = latency * payload_factor * total_layers
        else:
            self._comm_bytes_per_token = 0.0
            self._comm_bandwidth = 1.0
            self._comm_latency_per_step = 0.0

        self._step_overhead = (
            cfg.step_overhead_base_s
            + cfg.step_overhead_per_layer_s * (llm.n_layers + llm.n_encoder_layers)
        )

        # decode_step_time runs once per simulated engine step — the
        # single hottest call in the whole simulator — so its per-call
        # constants are folded here. Each folded value is the *same*
        # float expression the method used to evaluate inline (same
        # operand order), so results stay bit-identical.
        self._decode_weight_read = (
            self._decode_weight_bytes / self._effective_bandwidth
        )
        self._decode_kv_bytes = self.llm.kv_bytes_per_token
        self._decode_flops = self.llm.flops_per_token
        self._decode_compute_denom = (
            self._effective_tflops * cfg.decode_compute_efficiency
        )

    # ---- phases -----------------------------------------------------------

    def prefill_time(self, prompt_tokens: int) -> float:
        """Seconds to run the prompt-processing phase over ``prompt_tokens``
        total tokens (summed over the admitted requests). Compute-bound."""
        if prompt_tokens < 0:
            raise ValueError("prompt_tokens must be >= 0")
        flops = self.llm.flops_per_token * prompt_tokens
        compute = flops / (
            self._effective_tflops * self.config.prefill_compute_efficiency
        )
        comm = (
            self._comm_bytes_per_token * prompt_tokens / self._comm_bandwidth
            + self._comm_latency_per_step
        )
        return compute + comm + self._step_overhead

    def decode_step_time(self, n_seqs: int, kv_tokens: int) -> float:
        """Seconds for one decode step generating one token per sequence.

        ``n_seqs`` is the number of sequences in the batch (client-side
        batch entries included); ``kv_tokens`` the total tokens resident
        in the KV cache. Memory-bandwidth-bound with a compute term that
        becomes relevant for large batches on weak GPUs.
        """
        if n_seqs < 0 or kv_tokens < 0:
            raise ValueError("n_seqs and kv_tokens must be >= 0")
        kv_read = kv_tokens * self._decode_kv_bytes / self._effective_bandwidth
        compute = self._decode_flops * n_seqs / self._decode_compute_denom
        comm = (
            self._comm_bytes_per_token * n_seqs / self._comm_bandwidth
            + self._comm_latency_per_step
        )
        return self._decode_weight_read + kv_read + compute + comm + self._step_overhead

    # ---- aggregates ----------------------------------------------------------

    def model_load_time(self, disk_bandwidth_gbps: float = 1.5) -> float:
        """Seconds to pull weights into GPU memory at deployment time."""
        return self.llm.weights_bytes / (disk_bandwidth_gbps * 1e9)
