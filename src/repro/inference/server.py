"""Inference-server facade (deployment-level view of the engine).

``InferenceServer`` models one TGIS pod: it owns a continuous-batching
engine plus deployment metadata (CPU cores, pod memory), and exposes the
paper's deployment sequence — create the pod, wait for the model load,
then serve. The number of CPU cores and the pod memory are recorded but
have no performance effect, matching the paper's Fig 4 finding (their MDI
importance is ~300x below the batch weight's); they only gate validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.profile import GPUProfile
from repro.inference.costmodel import CostModel, CostModelConfig
from repro.inference.engine import ContinuousBatchingEngine
from repro.inference.memory import MemoryModel
from repro.models.llm import LLMSpec

__all__ = ["DeploymentSpec", "InferenceServer"]


@dataclass(frozen=True)
class DeploymentSpec:
    """Pod-level resource declaration (paper §III-C1).

    LLM-Pilot sets the pod memory to 250GB and the CPU-core count to twice
    the number of GPUs; both are exposed so the Fig 4 sensitivity study
    can vary them.
    """

    profile: GPUProfile
    max_batch_weight: int
    cpu_cores: int | None = None
    memory_gb: float = 250.0

    def resolved_cpu_cores(self) -> int:
        if self.cpu_cores is not None:
            if self.cpu_cores < 1:
                raise ValueError("cpu_cores must be >= 1")
            return self.cpu_cores
        return 2 * self.profile.count

    def __post_init__(self) -> None:
        if self.memory_gb <= 0:
            raise ValueError("pod memory must be positive")
        if self.max_batch_weight < 2:
            raise ValueError("max_batch_weight must be >= 2")


class InferenceServer:
    """One deployed inference-service pod."""

    def __init__(
        self,
        llm: LLMSpec,
        spec: DeploymentSpec,
        seed: int = 0,
        cost_config: CostModelConfig | None = None,
    ) -> None:
        self.llm = llm
        self.spec = spec
        self.memory = MemoryModel(llm, spec.profile)
        if not self.memory.weights_fit:
            raise MemoryError(
                f"{llm.name} does not fit on {spec.profile.name}: weights need "
                f"{llm.weights_bytes / 1e9:.1f}GB, capacity is "
                f"{self.memory.capacity_bytes / 1e9:.1f}GB"
            )
        self.cost = CostModel(llm, spec.profile, config=cost_config)
        self.engine = ContinuousBatchingEngine(
            llm=llm,
            profile=spec.profile,
            max_batch_weight=spec.max_batch_weight,
            cost_model=self.cost,
            seed=seed,
        )
        #: Virtual seconds spent creating the pod and loading the model.
        self.startup_time_s = 30.0 + self.cost.model_load_time()

    @property
    def profile(self) -> GPUProfile:
        return self.spec.profile

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InferenceServer({self.llm.name} on {self.spec.profile.name}, "
            f"W={self.spec.max_batch_weight})"
        )
