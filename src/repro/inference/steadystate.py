"""Analytic steady-state performance estimator.

A closed-form fast path that predicts throughput / ITL / TTFT for a
closed-loop population of ``u`` users without running the discrete-event
engine. Used for cross-validation of the simulator (the two must agree
on saturated and unsaturated regimes) and for quick what-if queries.

Model: with mean request footprint E[(in+out)*batch] tokens, the batch
weight admits ``n_fit = W / footprint`` concurrent requests. The active
request count is ``min(u, n_fit, max_batch_requests)``; a decode step
costs the cost-model step time at that batch size; throughput is
``active_seqs / step_time``; TTFT is prefill time plus, past saturation,
the queueing delay of a full rotation of the excess users (Little's law
on the closed loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.hardware.profile import GPUProfile
from repro.inference.costmodel import CostModel
from repro.models.llm import LLMSpec

if TYPE_CHECKING:  # avoid the workload <-> inference import cycle
    from repro.workload.generator import WorkloadGenerator

__all__ = ["SteadyStateEstimate", "SteadyStateEstimator"]


@dataclass(frozen=True)
class SteadyStateEstimate:
    """Closed-form predictions for one (LLM, profile, W, u) point."""

    concurrent_users: int
    active_requests: float
    throughput_tokens_per_s: float
    itl_s: float
    ttft_s: float
    saturated: bool


class SteadyStateEstimator:
    """Analytic estimator for one deployed service."""

    def __init__(
        self,
        llm: LLMSpec,
        profile: GPUProfile,
        max_batch_weight: int,
        generator: WorkloadGenerator,
        max_batch_requests: int = 256,
        n_samples: int = 20_000,
        seed: int = 0,
    ) -> None:
        if max_batch_weight < 2:
            raise ValueError("max_batch_weight must be >= 2")
        self.llm = llm
        self.profile = profile
        self.max_batch_weight = max_batch_weight
        self.max_batch_requests = max_batch_requests
        self.cost = CostModel(llm, profile)
        cols = generator.sample_columns(n_samples, rng=seed)
        inp = cols["input_tokens"].astype(float)
        out = cols["output_tokens"].astype(float)
        batch = cols.get("batch_size", np.ones(n_samples)).astype(float)
        self._mean_input = float(inp.mean())
        self._mean_output = float(out.mean())
        self._mean_batch = float(batch.mean())
        self._mean_footprint = float(((inp + out) * batch).mean())

    def estimate(self, concurrent_users: int) -> SteadyStateEstimate:
        """Predict steady-state metrics for ``concurrent_users``."""
        if concurrent_users < 1:
            raise ValueError("concurrent_users must be >= 1")
        u = concurrent_users
        n_fit = self.max_batch_weight / self._mean_footprint
        active = min(float(u), n_fit, float(self.max_batch_requests))
        saturated = active < u

        seqs = active * self._mean_batch
        # Mid-life KV residency: input plus half the output, per sequence.
        kv_tokens = int(
            active * (self._mean_input + 0.5 * self._mean_output) * self._mean_batch
        )
        decode_step = self.cost.decode_step_time(int(round(seqs)), kv_tokens)

        # Prefill interleave: every completed request admits a successor
        # whose prompt blocks decoding once per request lifetime.
        prefill = self.cost.prefill_time(
            int(self._mean_input * self._mean_batch)
        )
        steps_per_request = max(self._mean_output - 1.0, 1.0)
        itl = decode_step + prefill / steps_per_request

        throughput = seqs / itl if itl > 0 else 0.0
        service_time = self._mean_output * itl
        if saturated:
            # Closed loop: an arriving request waits for the excess users
            # ahead of it to rotate through the batch.
            queue_wait = (u - active) / active * service_time
        else:
            queue_wait = 0.0
        ttft = prefill + queue_wait
        return SteadyStateEstimate(
            concurrent_users=u,
            active_requests=active,
            throughput_tokens_per_s=throughput,
            itl_s=itl,
            ttft_s=ttft,
            saturated=saturated,
        )

    def sweep(self, user_counts: list[int]) -> list[SteadyStateEstimate]:
        return [self.estimate(u) for u in user_counts]
