"""Ground-truth oracle over the characterization dataset.

Computes, from *measured* performance data, the quantities Eq. (5)-(6)
compare recommendations against: the true per-pod umax of each profile
and the truly most cost-effective deployment the user could have chosen
with full knowledge of the unseen LLM's performance.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.characterization.dataset import PerfDataset
from repro.hardware.pricing import PricingTable
from repro.hardware.profile import parse_profile
from repro.recommendation.recommender import umax_from_latencies
from repro.recommendation.weights import LatencyConstraints

__all__ = ["OracleDeployment", "true_umax", "best_deployment"]


@dataclass(frozen=True)
class OracleDeployment:
    """The cost-optimal deployment under full information."""

    profile: str
    n_pods: int
    total_cost: float
    umax: int


def true_umax(
    dataset: PerfDataset,
    llm: str,
    profile: str,
    constraints: LatencyConstraints,
) -> int:
    """Measured umax (Eq. 3 evaluated on the LLM's real data).

    Returns 0 when the combination has no data (infeasible deployment)
    or violates a constraint already at the smallest measured load.
    """
    users, nttft = dataset.series(llm, profile, "nttft_median_s")
    _, itl = dataset.series(llm, profile, "itl_median_s")
    if len(users) == 0:
        return 0
    return umax_from_latencies(list(users), nttft, itl, constraints)


def best_deployment(
    dataset: PerfDataset,
    llm: str,
    profiles: Sequence[str],
    pricing: PricingTable,
    constraints: LatencyConstraints,
    total_users: int,
) -> OracleDeployment | None:
    """The cheapest (profile, pods) truly satisfying the requirements."""
    if total_users < 1:
        raise ValueError("total_users must be >= 1")
    best: OracleDeployment | None = None
    for name in profiles:
        umax = true_umax(dataset, llm, name, constraints)
        if umax < 1:
            continue
        n_pods = int(np.ceil(total_users / umax))
        cost = n_pods * pricing.pod_cost(parse_profile(name))
        if best is None or cost < best.total_cost or (
            cost == best.total_cost and n_pods < best.n_pods
        ):
            best = OracleDeployment(
                profile=name, n_pods=n_pods, total_cost=cost, umax=umax
            )
    return best
