"""Evaluation machinery: ground-truth oracle, Eq. (5)-(7) metrics and the
nested leave-one-LLM-out harness (Fig 8)."""

from repro.evaluation.metrics import (
    RecommendationOutcome,
    MethodScore,
    score_outcomes,
    so_score,
)
from repro.evaluation.oracle import OracleDeployment, true_umax, best_deployment

__all__ = [
    "RecommendationOutcome",
    "MethodScore",
    "score_outcomes",
    "so_score",
    "OracleDeployment",
    "true_umax",
    "best_deployment",
]
