"""Recommendation-quality metrics (paper Eqs. 5-7).

* **Success** S_M: the recommended deployment truly serves the required
  U concurrent users under the latency constraints.
* **Relative overspend** O_M: cost excess over the truly cheapest
  deployment, for successful recommendations.
* **S/O score**: harmonic mean of the success rate and max(0, 1 - O),
  the paper's headline metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.stats import harmonic_mean

__all__ = ["RecommendationOutcome", "MethodScore", "score_outcomes", "so_score"]


@dataclass(frozen=True)
class RecommendationOutcome:
    """Evaluation of one recommendation for one unseen LLM."""

    llm: str
    recommended_profile: str | None
    n_pods: int
    recommended_cost: float
    true_umax: int  # measured umax of the recommended profile
    oracle_profile: str | None
    oracle_cost: float
    total_users: int

    @property
    def success(self) -> bool:
        """Eq. (5): n * true umax covers the required user count."""
        if self.recommended_profile is None or self.oracle_profile is None:
            return False
        return self.n_pods * self.true_umax >= self.total_users

    @property
    def overspend(self) -> float:
        """Eq. (6); only defined for successful recommendations."""
        if not self.success:
            return float("nan")
        if self.oracle_cost <= 0:
            return float("nan")
        return (self.recommended_cost - self.oracle_cost) / self.oracle_cost


@dataclass
class MethodScore:
    """Aggregated Eq. (5)-(7) metrics for one method."""

    method: str
    success_rate: float
    mean_overspend: float
    so: float
    outcomes: list[RecommendationOutcome] = field(default_factory=list)


def so_score(success_rate: float, mean_overspend: float) -> float:
    """Eq. (7): harmonic mean of S and max(0, 1 - O)."""
    if not 0.0 <= success_rate <= 1.0:
        raise ValueError("success rate must be in [0, 1]")
    inv = max(0.0, 1.0 - mean_overspend) if np.isfinite(mean_overspend) else 0.0
    return harmonic_mean(success_rate, inv)


def score_outcomes(
    method: str, outcomes: list[RecommendationOutcome]
) -> MethodScore:
    """Aggregate per-LLM outcomes into the paper's three metrics."""
    if not outcomes:
        raise ValueError("no outcomes to score")
    successes = [o for o in outcomes if o.success]
    success_rate = len(successes) / len(outcomes)
    overspends = [o.overspend for o in successes if np.isfinite(o.overspend)]
    mean_overspend = float(np.mean(overspends)) if overspends else float("nan")
    if not successes:
        mean_overspend = float("inf")
    return MethodScore(
        method=method,
        success_rate=success_rate,
        mean_overspend=mean_overspend,
        so=so_score(success_rate, mean_overspend),
        outcomes=list(outcomes),
    )
