"""Nested leave-one-LLM-out evaluation of recommendation methods (§V-C).

Each catalog LLM in turn is treated as unseen: every method trains on the
remaining LLMs' characterization data (tuning its hyperparameters by
inner leave-one-LLM-out CV where applicable), observes the unseen LLM's
reference-profile measurements if the method requires them, recommends a
(GPU profile, pod count), and is scored against the measured ground
truth with Eqs. (5)-(7).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.baselines.base import BaseRecommender, REFERENCE_PROFILES
from repro.characterization.dataset import PerfDataset
from repro.characterization.feasibility import check_feasibility
from repro.characterization.loadtest import DEFAULT_USER_COUNTS
from repro.evaluation.metrics import (
    MethodScore,
    RecommendationOutcome,
    score_outcomes,
)
from repro.evaluation.oracle import best_deployment, true_umax
from repro.hardware.pricing import PricingTable, aws_like_pricing
from repro.hardware.profile import parse_profile
from repro.models.llm import LLMSpec
from repro.recommendation.weights import LatencyConstraints

__all__ = ["EvaluationConfig", "evaluate_method", "evaluate_methods", "ideal_score"]


@dataclass(frozen=True)
class EvaluationConfig:
    """The §V-C experimental setting."""

    total_users: int = 200
    constraints: LatencyConstraints = field(
        default_factory=lambda: LatencyConstraints(nttft_s=0.100, itl_s=0.050)
    )
    user_counts: tuple[int, ...] = DEFAULT_USER_COUNTS
    reference_profiles: tuple[str, str] = REFERENCE_PROFILES
    #: Largest workload request weight, for static feasibility screening of
    #: candidate profiles (available to every method: pure datasheet math).
    max_request_weight: int = 6000


def _candidate_profiles(
    llm: LLMSpec, profile_names: Sequence[str], max_request_weight: int
) -> list[str]:
    """Profiles that can statically host the LLM (no measurements used)."""
    out = []
    for name in profile_names:
        report = check_feasibility(llm, parse_profile(name), max_request_weight)
        if report.feasible:
            out.append(name)
    return out


def evaluate_method(
    method_factory: Callable[[], BaseRecommender],
    dataset: PerfDataset,
    llm_lookup: dict[str, LLMSpec],
    pricing: PricingTable | None = None,
    config: EvaluationConfig | None = None,
    method_name: str | None = None,
) -> MethodScore:
    """Leave-one-LLM-out evaluation of one recommendation method."""
    pricing = pricing or aws_like_pricing()
    config = config or EvaluationConfig()
    all_profiles = dataset.profiles()
    outcomes: list[RecommendationOutcome] = []
    name = method_name

    for test_llm in dataset.llms():
        llm_spec = llm_lookup[test_llm]
        train = dataset.exclude_llm(test_llm)
        method = method_factory()
        if name is None:
            name = method.name
        method.fit(train, llm_lookup)
        if method.requires_reference:
            reference = PerfDataset(
                records=[
                    r
                    for r in dataset.filter(llm=test_llm).records
                    if r.profile in config.reference_profiles
                ]
            )
            method.observe_reference(llm_spec, reference)

        candidates = _candidate_profiles(
            llm_spec, all_profiles, config.max_request_weight
        )
        oracle = best_deployment(
            dataset,
            test_llm,
            all_profiles,
            pricing,
            config.constraints,
            config.total_users,
        )
        if candidates:
            rec = method.recommend(
                llm_spec, candidates, pricing, config.constraints, config.total_users
            )
        else:
            rec = None
        outcomes.append(
            RecommendationOutcome(
                llm=test_llm,
                recommended_profile=rec.profile if rec else None,
                n_pods=rec.n_pods if rec else 0,
                recommended_cost=rec.total_cost if rec else float("inf"),
                true_umax=(
                    true_umax(dataset, test_llm, rec.profile, config.constraints)
                    if rec and rec.profile
                    else 0
                ),
                oracle_profile=oracle.profile if oracle else None,
                oracle_cost=oracle.total_cost if oracle else float("nan"),
                total_users=config.total_users,
            )
        )
    return score_outcomes(name or "method", outcomes)


def evaluate_methods(
    factories: dict[str, Callable[[], BaseRecommender]],
    dataset: PerfDataset,
    llm_lookup: dict[str, LLMSpec],
    pricing: PricingTable | None = None,
    config: EvaluationConfig | None = None,
) -> dict[str, MethodScore]:
    """Evaluate several methods under identical conditions (Fig 8)."""
    return {
        name: evaluate_method(
            factory, dataset, llm_lookup, pricing, config, method_name=name
        )
        for name, factory in factories.items()
    }


def ideal_score(
    dataset: PerfDataset,
    pricing: PricingTable | None = None,
    config: EvaluationConfig | None = None,
) -> MethodScore:
    """The theoretical ideal (star in Fig 8): the oracle's own choice."""
    pricing = pricing or aws_like_pricing()
    config = config or EvaluationConfig()
    profiles = dataset.profiles()
    outcomes = []
    for llm in dataset.llms():
        oracle = best_deployment(
            dataset, llm, profiles, pricing, config.constraints, config.total_users
        )
        outcomes.append(
            RecommendationOutcome(
                llm=llm,
                recommended_profile=oracle.profile if oracle else None,
                n_pods=oracle.n_pods if oracle else 0,
                recommended_cost=oracle.total_cost if oracle else float("inf"),
                true_umax=oracle.umax if oracle else 0,
                oracle_profile=oracle.profile if oracle else None,
                oracle_cost=oracle.total_cost if oracle else float("nan"),
                total_users=config.total_users,
            )
        )
    return score_outcomes("Ideal", outcomes)
