"""Synthetic production-trace substrate (substitute for the paper's
proprietary 17.3M-request IBM trace collection; see DESIGN.md)."""

from repro.traces.schema import (
    TraceDataset,
    REQUEST_PARAMS,
    CORE_PARAMS,
    DECODING_METHODS,
)
from repro.traces.archetypes import Archetype, DEFAULT_ARCHETYPES
from repro.traces.generator import TraceConfig, TraceSynthesizer, synthesize_traces

__all__ = [
    "TraceDataset",
    "REQUEST_PARAMS",
    "CORE_PARAMS",
    "DECODING_METHODS",
    "Archetype",
    "DEFAULT_ARCHETYPES",
    "TraceConfig",
    "TraceSynthesizer",
    "synthesize_traces",
]
