"""Synthetic production-trace generation.

This substitutes for the paper's proprietary 17.3M-request IBM trace
collection (Table II): a multi-tenant platform serving 24 LLMs
(3B–176B parameters) to ~2500 users over 5.5 months. The synthesizer
reproduces the *statistical structure* the paper measures and relies on:

* heavy-tailed, clipped token-count distributions (input 1–4093,
  output 1–1500), client batch sizes 1–5;
* strong cross-parameter correlation (token counts x batch size x
  decoding parameters) induced by a task-archetype mixture with
  per-user task affinity;
* a latency column dominated by the output token count, then input
  tokens, batch size and sampling parameters — so that the paper's
  Random-Forest importance study (§III-A, R^2 ~ 0.93) reproduces;
* a long tail of low-impact request flags (33 additional parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traces.archetypes import Archetype, DEFAULT_ARCHETYPES
from repro.traces.schema import DECODING_METHODS, TraceDataset
from repro.utils.rng import derive_rng

__all__ = ["TraceConfig", "TraceSynthesizer", "synthesize_traces"]

_SECONDS_PER_MONTH = 30.44 * 86_400.0


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for the synthetic trace collection (defaults mirror Table II)."""

    n_requests: int = 200_000
    n_users: int = 2_500
    n_platform_llms: int = 24
    min_llm_params_billion: float = 3.0
    max_llm_params_billion: float = 176.0
    months: float = 5.5
    user_archetype_affinity: float = 0.8  # P(request uses the user's main task)
    latency_noise_sigma: float = 0.085  # lognormal sigma on measured latency
    archetypes: tuple[Archetype, ...] = field(default=DEFAULT_ARCHETYPES)

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("n_requests must be positive")
        if self.n_users < 1:
            raise ValueError("n_users must be positive")
        if not 0.0 <= self.user_archetype_affinity <= 1.0:
            raise ValueError("user_archetype_affinity must be in [0, 1]")


class TraceSynthesizer:
    """Generates a :class:`TraceDataset` from a :class:`TraceConfig`."""

    def __init__(self, config: TraceConfig | None = None, seed: int = 0) -> None:
        self.config = config or TraceConfig()
        self.seed = seed

    # ---- helpers ---------------------------------------------------------

    def _platform_llm_sizes(self, rng: np.random.Generator) -> np.ndarray:
        """Log-uniform parameter counts for the 24 platform LLMs (3B-176B)."""
        cfg = self.config
        lo, hi = np.log(cfg.min_llm_params_billion), np.log(cfg.max_llm_params_billion)
        sizes = np.exp(rng.uniform(lo, hi, size=cfg.n_platform_llms))
        # Pin the extremes so the advertised range is realized exactly.
        if cfg.n_platform_llms >= 2:
            sizes[0] = cfg.min_llm_params_billion
            sizes[-1] = cfg.max_llm_params_billion
        return np.sort(sizes)

    def _user_population(
        self, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-user activity weights, main archetype and preferred LLM."""
        cfg = self.config
        # Zipf-like user activity: a few heavy users, a long tail.
        activity = rng.pareto(1.2, size=cfg.n_users) + 0.05
        archetype_weights = np.array([a.weight for a in cfg.archetypes])
        main_archetype = rng.choice(
            len(cfg.archetypes), size=cfg.n_users, p=archetype_weights
        )
        # LLM popularity is heavy-tailed: most traffic goes to a handful of
        # popular mid-sized models, with a long tail over the rest (as on
        # any real multi-tenant platform).
        ranks = rng.permutation(cfg.n_platform_llms)
        popularity = 1.0 / (1.0 + ranks) ** 1.4
        popularity /= popularity.sum()
        preferred_llm = rng.choice(cfg.n_platform_llms, size=cfg.n_users, p=popularity)
        return activity / activity.sum(), main_archetype, preferred_llm

    def _latency_model(
        self,
        llm_scale: np.ndarray,
        input_tokens: np.ndarray,
        output_tokens: np.ndarray,
        batch_size: np.ndarray,
        decoding_method: np.ndarray,
        num_beams: np.ndarray,
        temperature: np.ndarray,
        top_k: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """End-to-end latency of each request on the trace platform.

        The platform runs on A100s; per-token decode cost scales with the
        serviced LLM's size. The functional form makes the output token
        count dominant, followed by input tokens, batch size and sampling
        parameters — matching the paper's MDI ranking.
        """
        itl = 0.009 * llm_scale  # seconds per output token
        ttft = 0.08 + 0.00045 * llm_scale * input_tokens
        # Client-side batches multiply the per-step work of the serving
        # batch; the platform pipeline recovers part of it.
        batch_factor = 1.0 + 0.55 * (batch_size - 1.0)
        method_factor = np.ones_like(itl)
        is_beam = decoding_method == DECODING_METHODS.index("beam")
        is_sample = decoding_method == DECODING_METHODS.index("sample")
        method_factor = np.where(is_beam, 0.55 * np.maximum(num_beams, 2), method_factor)
        sample_overhead = 1.0 + 0.025 * temperature + 0.0004 * top_k
        method_factor = np.where(is_sample, sample_overhead, method_factor)
        latency = ttft + output_tokens * itl * batch_factor * method_factor
        noise = rng.lognormal(0.0, self.config.latency_noise_sigma, size=latency.shape)
        return latency * noise

    # ---- main entry --------------------------------------------------------

    def generate(self) -> TraceDataset:
        cfg = self.config
        n = cfg.n_requests
        rng = derive_rng(self.seed, "traces")

        llm_sizes = self._platform_llm_sizes(derive_rng(self.seed, "platform-llms"))
        user_weights, user_main_arch, user_llm = self._user_population(
            derive_rng(self.seed, "users")
        )

        user_id = rng.choice(cfg.n_users, size=n, p=user_weights)

        # Request archetype: the user's main task with probability `affinity`,
        # otherwise a fresh draw from the global mixture.
        archetype_weights = np.array([a.weight for a in cfg.archetypes])
        stick = rng.random(n) < cfg.user_archetype_affinity
        random_arch = rng.choice(len(cfg.archetypes), size=n, p=archetype_weights)
        arch_idx = np.where(stick, user_main_arch[user_id], random_arch)

        # Serviced LLM: mostly the user's preferred model.
        other_llm = rng.integers(0, cfg.n_platform_llms, size=n)
        llm_index = np.where(rng.random(n) < 0.85, user_llm[user_id], other_llm)

        # Timestamps: uniform over the collection period with a diurnal shape.
        span = cfg.months * _SECONDS_PER_MONTH
        raw_ts = rng.uniform(0.0, span, size=n)
        hour = (raw_ts / 3600.0) % 24.0
        # Rejection-free diurnal skew: push timestamps toward working hours.
        raw_ts += 3600.0 * 0.35 * np.sin((hour - 15.0) / 24.0 * 2 * np.pi)
        timestamp = np.sort(np.clip(raw_ts, 0.0, span))

        cols: dict[str, np.ndarray] = {
            "timestamp": timestamp,
            "user_id": user_id.astype(np.int32),
            "llm_index": llm_index.astype(np.int32),
        }

        # Per-archetype parameter sampling (vectorized per group).
        int_cols = (
            "input_tokens output_tokens batch_size decoding_method top_k num_beams "
            "max_new_tokens min_new_tokens no_repeat_ngram_size truncate_input_tokens "
            "num_stop_sequences stream include_input_text seed_provided return_logprobs "
            "return_ranks return_top_n_tokens stop_on_eos echo best_of "
            "decoder_input_details watermark adapter_id_set guided_decoding priority"
        ).split()
        float_cols = (
            "temperature top_p typical_p repetition_penalty length_penalty "
            "time_limit_ms presence_penalty frequency_penalty"
        ).split()
        for c in int_cols:
            cols[c] = np.zeros(n, dtype=np.int32)
        for c in float_cols:
            cols[c] = np.zeros(n, dtype=np.float64)

        for ai, arch in enumerate(cfg.archetypes):
            idx = np.nonzero(arch_idx == ai)[0]
            if idx.size == 0:
                continue
            grng = derive_rng(self.seed, "archetype", arch.name)
            self._fill_archetype(cols, idx, arch, grng)

        # Latency from the platform model.
        cols["latency_s"] = self._latency_model(
            llm_scale=llm_sizes[llm_index] / 13.0,
            input_tokens=cols["input_tokens"].astype(float),
            output_tokens=cols["output_tokens"].astype(float),
            batch_size=cols["batch_size"].astype(float),
            decoding_method=cols["decoding_method"],
            num_beams=cols["num_beams"].astype(float),
            temperature=cols["temperature"],
            top_k=cols["top_k"].astype(float),
            rng=derive_rng(self.seed, "latency-noise"),
        )

        llm_names = [f"platform-llm-{i:02d}-{s:.0f}B" for i, s in enumerate(llm_sizes)]
        return TraceDataset(columns=cols, llm_names=llm_names)

    def _fill_archetype(
        self,
        cols: dict[str, np.ndarray],
        idx: np.ndarray,
        arch: Archetype,
        rng: np.random.Generator,
    ) -> None:
        m = idx.size
        inp, out = arch.sample_tokens(rng, m)

        batch = rng.choice(
            np.arange(1, len(arch.batch_probs) + 1), size=m, p=arch.batch_probs
        )
        # Platform rule observed in the traces: client-side batches above 1
        # only carry short sequences (the platform rejects oversized batched
        # payloads), which is part of what correlates batch size with the
        # token counts (Fig 3) and bounds the largest request weight.
        capped = batch > 1
        inp = np.where(capped, np.minimum(inp, 2048 // batch), inp).astype(np.int32)
        out = np.where(capped, np.minimum(out, 1024 // batch), out).astype(np.int32)
        cols["input_tokens"][idx] = inp
        cols["output_tokens"][idx] = out
        cols["batch_size"][idx] = batch

        method = rng.choice(3, size=m, p=(arch.p_greedy, arch.p_sample, arch.p_beam))
        cols["decoding_method"][idx] = method
        is_sample = method == 1
        is_beam = method == 2

        temp = np.where(is_sample, rng.uniform(*arch.temp_range, size=m), 0.0)
        cols["temperature"][idx] = temp
        cols["top_k"][idx] = np.where(
            is_sample, rng.choice(arch.top_k_choices, size=m), 0
        )
        cols["top_p"][idx] = np.where(
            is_sample, rng.uniform(*arch.top_p_range, size=m), 1.0
        )
        cols["typical_p"][idx] = np.where(
            is_sample & (rng.random(m) < 0.1), rng.uniform(0.2, 0.95, size=m), 1.0
        )
        cols["num_beams"][idx] = np.where(is_beam, rng.integers(2, 6, size=m), 1)
        cols["repetition_penalty"][idx] = rng.uniform(
            *arch.repetition_penalty_range, size=m
        )
        cols["length_penalty"][idx] = np.where(
            is_beam, rng.uniform(*arch.length_penalty_range, size=m), 1.0
        )

        margin = rng.uniform(1.0, 1.0 + arch.max_new_margin, size=m)
        cols["max_new_tokens"][idx] = np.clip(
            np.round(out * margin), out, 2048
        ).astype(np.int32)
        cols["min_new_tokens"][idx] = np.where(rng.random(m) < 0.05, 16, 0)

        # Low-impact flag tail (independent nuisance parameters).
        cols["no_repeat_ngram_size"][idx] = np.where(rng.random(m) < 0.08, 3, 0)
        cols["truncate_input_tokens"][idx] = np.where(
            rng.random(m) < 0.12, 4096, 0
        )
        cols["num_stop_sequences"][idx] = rng.binomial(3, 0.1, size=m)
        cols["stream"][idx] = (rng.random(m) < 0.55).astype(np.int32)
        cols["include_input_text"][idx] = (rng.random(m) < 0.1).astype(np.int32)
        cols["seed_provided"][idx] = (rng.random(m) < 0.07).astype(np.int32)
        cols["return_logprobs"][idx] = (rng.random(m) < 0.06).astype(np.int32)
        cols["return_ranks"][idx] = (rng.random(m) < 0.03).astype(np.int32)
        cols["return_top_n_tokens"][idx] = rng.binomial(5, 0.03, size=m)
        cols["time_limit_ms"][idx] = np.where(rng.random(m) < 0.04, 60_000.0, 0.0)
        cols["presence_penalty"][idx] = np.where(
            rng.random(m) < 0.05, rng.uniform(0.0, 1.0, size=m), 0.0
        )
        cols["frequency_penalty"][idx] = np.where(
            rng.random(m) < 0.05, rng.uniform(0.0, 1.0, size=m), 0.0
        )
        cols["stop_on_eos"][idx] = (rng.random(m) < 0.97).astype(np.int32)
        cols["echo"][idx] = (rng.random(m) < 0.01).astype(np.int32)
        cols["best_of"][idx] = np.where(rng.random(m) < 0.02, 2, 1)
        cols["decoder_input_details"][idx] = (rng.random(m) < 0.02).astype(np.int32)
        cols["watermark"][idx] = (rng.random(m) < 0.01).astype(np.int32)
        cols["adapter_id_set"][idx] = (rng.random(m) < 0.05).astype(np.int32)
        cols["guided_decoding"][idx] = (rng.random(m) < 0.03).astype(np.int32)
        cols["priority"][idx] = rng.choice((0, 1, 2), size=m, p=(0.8, 0.15, 0.05))


def synthesize_traces(
    n_requests: int = 200_000, seed: int = 0, config: TraceConfig | None = None
) -> TraceDataset:
    """Convenience wrapper: synthesize a trace collection of ``n_requests``."""
    if config is None:
        config = TraceConfig(n_requests=n_requests)
    return TraceSynthesizer(config=config, seed=seed).generate()
