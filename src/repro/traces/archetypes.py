"""Workload archetypes used to synthesize production-like traces.

The paper's traces come from a real multi-tenant inference platform and
exhibit strong correlation between request parameters (Fig 3). We do not
have access to those traces, so we synthesize them from *task archetypes*
— chat, summarization, code generation, information extraction,
translation and classification — each with its own joint distribution of
input/output token counts, client batch size and decoding parameters.
Mixing archetypes (across users and requests) produces the heavy-tailed,
strongly-correlated marginals the paper's analyses rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Archetype", "DEFAULT_ARCHETYPES"]


@dataclass(frozen=True)
class Archetype:
    """Joint request-parameter distribution for one task family.

    Token counts are drawn from a correlated bivariate lognormal
    (``rho`` couples input and output lengths), then clipped to the
    platform limits. Decoding parameters are drawn conditionally on the
    archetype's decoding-method mix, which is what couples e.g.
    temperature and top_k to the token counts in the mixture.
    """

    name: str
    weight: float  # mixture weight across the request population
    log_input_mean: float
    log_input_sigma: float
    log_output_mean: float
    log_output_sigma: float
    rho: float  # correlation between log input and log output tokens
    batch_probs: tuple[float, ...]  # P(batch_size = 1..len)
    p_greedy: float
    p_sample: float
    p_beam: float
    temp_range: tuple[float, float]
    top_k_choices: tuple[int, ...]
    top_p_range: tuple[float, float]
    repetition_penalty_range: tuple[float, float]
    length_penalty_range: tuple[float, float]
    max_new_margin: float  # max_new_tokens = output * U(1, 1+margin)

    def __post_init__(self) -> None:
        total = self.p_greedy + self.p_sample + self.p_beam
        if not np.isclose(total, 1.0):
            raise ValueError(f"decoding-method mix must sum to 1 for {self.name}")
        if not -1.0 < self.rho < 1.0:
            raise ValueError(f"rho must be in (-1, 1) for {self.name}")
        if not np.isclose(sum(self.batch_probs), 1.0):
            raise ValueError(f"batch_probs must sum to 1 for {self.name}")

    def sample_tokens(self, rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` correlated (input_tokens, output_tokens) pairs."""
        z1 = rng.standard_normal(n)
        z2 = self.rho * z1 + np.sqrt(1.0 - self.rho**2) * rng.standard_normal(n)
        inp = np.exp(self.log_input_mean + self.log_input_sigma * z1)
        out = np.exp(self.log_output_mean + self.log_output_sigma * z2)
        inp = np.clip(np.round(inp), 1, 4093).astype(np.int32)
        out = np.clip(np.round(out), 1, 1500).astype(np.int32)
        return inp, out


DEFAULT_ARCHETYPES: tuple[Archetype, ...] = (
    Archetype(
        name="chat",
        weight=0.34,
        log_input_mean=np.log(120.0),
        log_input_sigma=0.85,
        log_output_mean=np.log(170.0),
        log_output_sigma=0.75,
        rho=0.45,
        batch_probs=(1.0, 0.0, 0.0, 0.0, 0.0),
        p_greedy=0.15,
        p_sample=0.85,
        p_beam=0.0,
        temp_range=(0.6, 1.1),
        top_k_choices=(0, 40, 50),
        top_p_range=(0.85, 1.0),
        repetition_penalty_range=(1.0, 1.2),
        length_penalty_range=(1.0, 1.0),
        max_new_margin=0.6,
    ),
    Archetype(
        name="summarization",
        weight=0.16,
        log_input_mean=np.log(1600.0),
        log_input_sigma=0.55,
        log_output_mean=np.log(180.0),
        log_output_sigma=0.45,
        rho=0.6,
        batch_probs=(0.7, 0.2, 0.1, 0.0, 0.0),
        p_greedy=0.55,
        p_sample=0.25,
        p_beam=0.2,
        temp_range=(0.0, 0.4),
        top_k_choices=(0, 10),
        top_p_range=(0.9, 1.0),
        repetition_penalty_range=(1.0, 1.3),
        length_penalty_range=(0.8, 1.4),
        max_new_margin=0.4,
    ),
    Archetype(
        name="codegen",
        weight=0.18,
        log_input_mean=np.log(420.0),
        log_input_sigma=0.8,
        log_output_mean=np.log(380.0),
        log_output_sigma=0.8,
        rho=0.55,
        batch_probs=(0.9, 0.08, 0.02, 0.0, 0.0),
        p_greedy=0.35,
        p_sample=0.65,
        p_beam=0.0,
        temp_range=(0.1, 0.8),
        top_k_choices=(0, 40),
        top_p_range=(0.9, 1.0),
        repetition_penalty_range=(1.0, 1.1),
        length_penalty_range=(1.0, 1.0),
        max_new_margin=0.9,
    ),
    Archetype(
        name="extraction",
        weight=0.14,
        log_input_mean=np.log(900.0),
        log_input_sigma=0.6,
        log_output_mean=np.log(28.0),
        log_output_sigma=0.7,
        rho=0.3,
        batch_probs=(0.35, 0.25, 0.2, 0.1, 0.1),
        p_greedy=0.9,
        p_sample=0.1,
        p_beam=0.0,
        temp_range=(0.0, 0.2),
        top_k_choices=(0,),
        top_p_range=(1.0, 1.0),
        repetition_penalty_range=(1.0, 1.0),
        length_penalty_range=(1.0, 1.0),
        max_new_margin=1.5,
    ),
    Archetype(
        name="translation",
        weight=0.1,
        log_input_mean=np.log(300.0),
        log_input_sigma=0.7,
        log_output_mean=np.log(310.0),
        log_output_sigma=0.7,
        rho=0.92,
        batch_probs=(0.5, 0.25, 0.15, 0.06, 0.04),
        p_greedy=0.5,
        p_sample=0.2,
        p_beam=0.3,
        temp_range=(0.0, 0.3),
        top_k_choices=(0, 5),
        top_p_range=(0.95, 1.0),
        repetition_penalty_range=(1.0, 1.05),
        length_penalty_range=(0.9, 1.3),
        max_new_margin=0.5,
    ),
    Archetype(
        name="classification",
        weight=0.08,
        log_input_mean=np.log(220.0),
        log_input_sigma=0.5,
        log_output_mean=np.log(3.0),
        log_output_sigma=0.5,
        rho=0.1,
        batch_probs=(0.2, 0.2, 0.2, 0.2, 0.2),
        p_greedy=1.0,
        p_sample=0.0,
        p_beam=0.0,
        temp_range=(0.0, 0.0),
        top_k_choices=(0,),
        top_p_range=(1.0, 1.0),
        repetition_penalty_range=(1.0, 1.0),
        length_penalty_range=(1.0, 1.0),
        max_new_margin=3.0,
    ),
)

_total = sum(a.weight for a in DEFAULT_ARCHETYPES)
if not np.isclose(_total, 1.0):
    raise ValueError(f"archetype weights must sum to 1, got {_total}")
