"""Trace dataset schema.

A trace is a record of inference requests sent to an LLM inference
platform (paper §III-A): for each request we store the user id, the
timestamp, the serviced LLM, the measured end-to-end latency, and the
full set of request parameters (token counts, client-side batch size and
the TGIS-specific decoding parameters).

Storage is columnar (one numpy array per column) which keeps the dataset
compact and makes the statistical analyses (Spearman correlation, RF
importance, marginal CDFs) vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TraceDataset", "REQUEST_PARAMS", "CORE_PARAMS", "DECODING_METHODS"]

#: Encoding of the categorical decoding method column.
DECODING_METHODS = ("greedy", "sample", "beam")

#: The request parameters with the strongest latency impact (paper §III-A):
#: token counts, client-side batch size and the token-sampling parameters.
CORE_PARAMS = (
    "input_tokens",
    "output_tokens",
    "batch_size",
    "decoding_method",
    "temperature",
    "top_k",
    "top_p",
    "repetition_penalty",
    "length_penalty",
    "max_new_tokens",
)

#: All request-parameter columns (Table II lists 33 additional parameters
#: beyond the token counts; we model the influential ones plus a tail of
#: low-impact flags so importance analyses have realistic nuisance columns).
REQUEST_PARAMS = CORE_PARAMS + (
    "min_new_tokens",
    "typical_p",
    "num_beams",
    "no_repeat_ngram_size",
    "truncate_input_tokens",
    "num_stop_sequences",
    "stream",
    "include_input_text",
    "seed_provided",
    "return_logprobs",
    "return_ranks",
    "return_top_n_tokens",
    "time_limit_ms",
    "presence_penalty",
    "frequency_penalty",
    "stop_on_eos",
    "echo",
    "best_of",
    "decoder_input_details",
    "watermark",
    "adapter_id_set",
    "guided_decoding",
    "priority",
)

#: Columns that are bookkeeping rather than request parameters.
_META_COLUMNS = ("timestamp", "user_id", "llm_index", "latency_s")


@dataclass
class TraceDataset:
    """Columnar collection of inference-request records."""

    columns: dict[str, np.ndarray]
    llm_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        lengths = {name: len(col) for name, col in self.columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns: {lengths}")
        for required in ("timestamp", "user_id", "input_tokens", "output_tokens"):
            if required not in self.columns:
                raise ValueError(f"trace dataset missing column {required!r}")

    # ---- basic accessors ------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns["timestamp"])

    @property
    def n_requests(self) -> int:
        return len(self)

    @property
    def n_users(self) -> int:
        return int(np.unique(self.columns["user_id"]).size)

    @property
    def n_llms(self) -> int:
        if "llm_index" not in self.columns:
            return 0
        return int(np.unique(self.columns["llm_index"]).size)

    def param_names(self) -> list[str]:
        """Request-parameter column names present in this dataset."""
        return [p for p in REQUEST_PARAMS if p in self.columns]

    def param_matrix(self, params: list[str] | None = None) -> np.ndarray:
        """(n_requests, n_params) float matrix of request parameters."""
        params = params or self.param_names()
        return np.column_stack([self.columns[p].astype(float) for p in params])

    def __getitem__(self, name: str) -> np.ndarray:
        return self.columns[name]

    def select(self, mask: np.ndarray) -> "TraceDataset":
        """Row subset of the dataset (boolean mask or index array)."""
        return TraceDataset(
            columns={k: v[mask] for k, v in self.columns.items()},
            llm_names=list(self.llm_names),
        )

    # ---- reporting -------------------------------------------------------

    def time_span_days(self) -> float:
        ts = self.columns["timestamp"]
        if len(ts) == 0:
            return 0.0
        return float((ts.max() - ts.min()) / 86_400.0)

    def summary(self) -> dict[str, object]:
        """Characteristics in the shape of the paper's Table II."""
        inp = self.columns["input_tokens"]
        out = self.columns["output_tokens"]
        n_extra = len(self.param_names()) - 3  # beyond input/output/batch
        return {
            "time_period_months": self.time_span_days() / 30.44,
            "n_requests": self.n_requests,
            "n_users": self.n_users,
            "n_llms": self.n_llms,
            "input_tokens_range": (int(inp.min()), int(inp.max())) if len(self) else (0, 0),
            "output_tokens_range": (int(out.min()), int(out.max())) if len(self) else (0, 0),
            "batch_size_range": (
                (int(self.columns["batch_size"].min()), int(self.columns["batch_size"].max()))
                if "batch_size" in self.columns and len(self)
                else (0, 0)
            ),
            "n_additional_params": n_extra,
        }

    # ---- simulation bridge ------------------------------------------------

    def to_arrivals(
        self,
        llm: str | int | None = None,
        start_s: float | None = None,
        duration_s: float | None = None,
    ) -> dict[str, np.ndarray]:
        """Normalized arrival-log columns for trace-replay simulation.

        Selects the requests serviced by ``llm`` (a name from
        :attr:`llm_names` or an index; ``None``: the whole platform),
        optionally windowed to ``[start_s, start_s + duration_s)`` of
        absolute trace time, and returns the columns a
        :class:`~repro.simulation.replay.ArrivalLog` is built from:
        ``timestamp`` (sorted, rebased so the first arrival is at 0),
        ``input_tokens``, ``output_tokens``, ``batch_size`` and
        ``user_id`` (the per-user session identity).
        """
        mask = np.ones(len(self), dtype=bool)
        if llm is not None:
            if isinstance(llm, str):
                if llm not in self.llm_names:
                    raise KeyError(f"unknown LLM {llm!r}; see llm_names")
                llm = self.llm_names.index(llm)
            if "llm_index" not in self.columns:
                raise ValueError("trace dataset has no llm_index column")
            mask &= self.columns["llm_index"] == int(llm)
        ts = self.columns["timestamp"]
        if start_s is not None:
            mask &= ts >= start_s
        if duration_s is not None:
            mask &= ts < (start_s or 0.0) + duration_s
        subset = self.select(mask)
        order = np.argsort(subset.columns["timestamp"], kind="stable")
        ts = subset.columns["timestamp"][order]
        batch = (
            subset.columns["batch_size"][order]
            if "batch_size" in subset.columns
            else np.ones(order.size, dtype=np.int32)
        )
        return {
            "timestamp": ts - (ts[0] if ts.size else 0.0),
            "input_tokens": subset.columns["input_tokens"][order],
            "output_tokens": subset.columns["output_tokens"][order],
            "batch_size": batch,
            "user_id": subset.columns["user_id"][order],
        }

    # ---- persistence ------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist as a compressed ``.npz`` archive."""
        np.savez_compressed(
            path, __llm_names__=np.array(self.llm_names, dtype=object), **self.columns
        )

    @classmethod
    def load(cls, path: str) -> "TraceDataset":
        with np.load(path, allow_pickle=True) as archive:
            llm_names = [str(x) for x in archive["__llm_names__"]]
            columns = {k: archive[k] for k in archive.files if k != "__llm_names__"}
        return cls(columns=columns, llm_names=llm_names)

    def nbytes(self) -> int:
        """In-memory footprint of the trace columns (for the §V-A size study)."""
        return int(sum(col.nbytes for col in self.columns.values()))
